#ifndef PAE_UTIL_TABLE_PRINTER_H_
#define PAE_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace pae {

/// Renders aligned plain-text tables for the experiment harnesses so
/// every bench binary prints the same row/column layout as the paper's
/// tables. Cells are strings; numeric formatting is the caller's job.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pae

#endif  // PAE_UTIL_TABLE_PRINTER_H_
