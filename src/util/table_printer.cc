#include "util/table_printer.h"

#include "util/logging.h"

namespace pae {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  PAE_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PAE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << "+";
    }
    os << "\n";
  };

  if (!title_.empty()) os << "\n== " << title_ << " ==\n";
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace pae
