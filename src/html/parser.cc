#include "html/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "text/utf8.h"
#include "util/strings.h"

namespace pae::html {

namespace {

std::string ToLowerAscii(std::string_view s) { return pae::AsciiToLower(s); }

}  // namespace

// Both predicates sit on the per-tag hot path of ParseHtml and the
// streaming scanner, so they branch on length instead of hashing.
bool IsVoidTag(std::string_view tag) {
  switch (tag.size()) {
    case 2:
      return tag == "br" || tag == "hr";
    case 3:
      return tag == "img" || tag == "col" || tag == "wbr";
    case 4:
      return tag == "meta" || tag == "link" || tag == "area" ||
             tag == "base";
    case 5:
      return tag == "input" || tag == "embed" || tag == "track";
    case 6:
      return tag == "source";
    default:
      return false;
  }
}

bool IsBlockTag(std::string_view tag) {
  switch (tag.size()) {
    case 1:
      return tag[0] == 'p';
    case 2: {
      const char a = tag[0];
      const char b = tag[1];
      if (a == 'h') return b >= '1' && b <= '6';
      if (a == 'b') return b == 'r';
      if (a == 'l') return b == 'i';
      if (a == 'u' || a == 'o') return b == 'l';
      if (a == 't') return b == 'r' || b == 'd' || b == 'h';
      if (a == 'd') return b == 't' || b == 'd' || b == 'l';
      return false;
    }
    case 3:
      return tag == "div";
    case 4:
      return tag == "body";
    case 5:
      return tag == "table" || tag == "title";
    case 7:
      return tag == "section" || tag == "article";
    default:
      return false;
  }
}

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      out.push_back('&');
      ++i;
      continue;
    }
    std::string_view name = s.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "nbsp") {
      out.push_back(' ');
    } else if (!name.empty() && name[0] == '#') {
      char32_t cp = 0;
      bool ok = false;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        cp = static_cast<char32_t>(
            std::strtoul(std::string(name.substr(2)).c_str(), nullptr, 16));
        ok = true;
      } else if (name.size() > 1) {
        cp = static_cast<char32_t>(
            std::strtoul(std::string(name.substr(1)).c_str(), nullptr, 10));
        ok = true;
      }
      if (ok && cp > 0) {
        pae::text::AppendUtf8(cp, &out);
      }
    } else {
      // Unknown entity: keep it verbatim.
      out.append(s.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

std::unique_ptr<HtmlNode> ParseHtml(std::string_view html) {
  auto root = std::make_unique<HtmlNode>();
  root->type = HtmlNode::Type::kElement;
  root->tag = "#root";

  std::vector<HtmlNode*> stack = {root.get()};
  size_t i = 0;
  const size_t n = html.size();

  auto append_text = [&](std::string_view raw) {
    std::string decoded = DecodeEntities(raw);
    if (decoded.empty()) return;
    auto node = std::make_unique<HtmlNode>();
    node->type = HtmlNode::Type::kText;
    node->text = std::move(decoded);
    stack.back()->children.push_back(std::move(node));
  };

  while (i < n) {
    if (html[i] != '<') {
      size_t lt = html.find('<', i);
      if (lt == std::string_view::npos) lt = n;
      append_text(html.substr(i, lt - i));
      i = lt;
      continue;
    }
    // Comment?
    if (html.compare(i, 4, "<!--") == 0) {
      size_t end = html.find("-->", i + 4);
      i = (end == std::string_view::npos) ? n : end + 3;
      continue;
    }
    // Doctype or other declaration?
    if (i + 1 < n && (html[i + 1] == '!' || html[i + 1] == '?')) {
      size_t end = html.find('>', i + 1);
      i = (end == std::string_view::npos) ? n : end + 1;
      continue;
    }
    size_t gt = html.find('>', i + 1);
    if (gt == std::string_view::npos) {
      append_text(html.substr(i));
      break;
    }
    std::string_view inner = html.substr(i + 1, gt - i - 1);
    bool closing = !inner.empty() && inner[0] == '/';
    if (closing) inner.remove_prefix(1);
    bool self_closing = !inner.empty() && inner.back() == '/';
    if (self_closing) inner.remove_suffix(1);

    // Tag name: leading run of alphanumerics.
    size_t name_end = 0;
    while (name_end < inner.size() &&
           (std::isalnum(static_cast<unsigned char>(inner[name_end])) != 0)) {
      ++name_end;
    }
    std::string tag = ToLowerAscii(inner.substr(0, name_end));
    i = gt + 1;
    if (tag.empty()) continue;  // Malformed tag: skip it.

    if (closing) {
      // Pop to the matching open element, if present on the stack.
      for (size_t d = stack.size(); d > 1; --d) {
        if (stack[d - 1]->tag == tag) {
          stack.resize(d - 1);
          break;
        }
      }
      continue;
    }

    auto node = std::make_unique<HtmlNode>();
    node->type = HtmlNode::Type::kElement;
    node->tag = tag;
    HtmlNode* raw = node.get();
    stack.back()->children.push_back(std::move(node));

    if (tag == "script" || tag == "style") {
      // Raw-text element: skip to the close tag, drop the body.
      std::string close = "</" + tag;
      size_t pos = i;
      while (pos < n) {
        size_t found = html.find(close, pos);
        if (found == std::string_view::npos) {
          i = n;
          break;
        }
        size_t end = html.find('>', found);
        i = (end == std::string_view::npos) ? n : end + 1;
        break;
      }
      continue;
    }

    if (!self_closing && !IsVoidTag(tag)) {
      stack.push_back(raw);
    }
  }
  return root;
}

namespace {
void ExtractTextRec(const HtmlNode& node, std::string* out) {
  if (node.type == HtmlNode::Type::kText) {
    out->append(node.text);
    return;
  }
  const bool block = IsBlockTag(node.tag);
  if (block && !out->empty() && out->back() != '\n') out->push_back('\n');
  for (const auto& child : node.children) ExtractTextRec(*child, out);
  if (block && !out->empty() && out->back() != '\n') out->push_back('\n');
}

void FindAllRec(const HtmlNode& node, std::string_view tag,
                std::vector<const HtmlNode*>* out) {
  if (node.type == HtmlNode::Type::kElement && node.tag == tag) {
    out->push_back(&node);
  }
  for (const auto& child : node.children) FindAllRec(*child, tag, out);
}
}  // namespace

std::string ExtractText(const HtmlNode& node) {
  std::string out;
  ExtractTextRec(node, &out);
  return out;
}

std::vector<const HtmlNode*> FindAll(const HtmlNode& node,
                                     std::string_view tag) {
  std::vector<const HtmlNode*> out;
  FindAllRec(node, tag, &out);
  return out;
}

}  // namespace pae::html
