#ifndef PAE_HTML_TABLE_EXTRACTOR_H_
#define PAE_HTML_TABLE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "html/parser.h"

namespace pae::html {

/// A spec table in "dictionary" form: one attribute-name / attribute-value
/// pair per entry, in document order.
struct DictionaryTable {
  std::vector<std::pair<std::string, std::string>> entries;
};

/// Cell grid of one <table> (rows of trimmed cell texts).
using TableGrid = std::vector<std::vector<std::string>>;

/// Normalizes one cell's extracted text: internal newlines/tabs/space
/// runs collapse to a single space, edges are trimmed. Shared by the
/// DOM grid extraction and the streaming scanner.
std::string CollapseCellText(std::string_view raw);

/// Builds the cell grid of a single <table> element.
TableGrid ExtractGrid(const HtmlNode& table);

/// Detects whether `grid` has dictionary structure — exactly 2 columns ×
/// n rows (key in column 0) or exactly 2 rows × n columns (key in row 0),
/// following the seed-extraction convention of §V-A — and converts it.
/// Returns false if the grid is not in dictionary form.
bool GridToDictionary(const TableGrid& grid, DictionaryTable* out);

/// Finds every dictionary-form table in the document.
std::vector<DictionaryTable> ExtractDictionaryTables(const HtmlNode& root);

}  // namespace pae::html

#endif  // PAE_HTML_TABLE_EXTRACTOR_H_
