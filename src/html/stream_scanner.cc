#include "html/stream_scanner.h"

#include <cctype>

#include "html/parser.h"
#include "util/logging.h"

namespace pae::html {

void StreamScanner::AppendTextRun(std::string_view raw) {
  // DecodeEntities copies verbatim when no '&' is present; skip the
  // temporary in that common case.
  if (raw.find('&') == std::string_view::npos) {
    if (raw.empty()) return;
    text_.append(raw);
    for (const int32_t cell : open_cells_) {
      cells_[static_cast<size_t>(cell)].append(raw);
    }
    return;
  }
  const std::string decoded = DecodeEntities(raw);
  if (decoded.empty()) return;
  text_.append(decoded);
  for (const int32_t cell : open_cells_) {
    cells_[static_cast<size_t>(cell)].append(decoded);
  }
}

void StreamScanner::BlockBreak() {
  if (!text_.empty() && text_.back() != '\n') text_.push_back('\n');
  for (const int32_t cell : open_cells_) {
    std::string& buffer = cells_[static_cast<size_t>(cell)];
    if (!buffer.empty() && buffer.back() != '\n') buffer.push_back('\n');
  }
}

void StreamScanner::OpenElement(std::string_view lower_tag,
                                bool self_closing) {
  const bool block = IsBlockTag(lower_tag);
  // ExtractTextRec emits the leading block '\n' when it reaches the
  // node — before any of its children, and before this element's own
  // cell capture (if any) starts.
  if (block) BlockBreak();

  if (depth_ == stack_.size()) stack_.emplace_back();
  Entry& entry = stack_[depth_];
  entry.tag.assign(lower_tag);
  entry.block = block;
  entry.table = -1;
  entry.row = -1;
  entry.cell = -1;

  if (lower_tag == "table") {
    if (table_count_ == table_rows_.size()) table_rows_.emplace_back();
    table_rows_[table_count_].clear();
    entry.table = static_cast<int32_t>(table_count_);
    active_tables_.push_back(entry.table);
    ++table_count_;
  } else if (lower_tag == "tr") {
    // FindAll(table, "tr") collects every descendant <tr>, so the row
    // joins the grid of each enclosing table, in document order.
    if (!active_tables_.empty()) {
      if (row_count_ == row_cells_.size()) row_cells_.emplace_back();
      row_cells_[row_count_].clear();
      entry.row = static_cast<int32_t>(row_count_);
      for (const int32_t table : active_tables_) {
        table_rows_[static_cast<size_t>(table)].push_back(entry.row);
      }
      ++row_count_;
    }
  } else if (lower_tag == "td" || lower_tag == "th") {
    // ExtractGrid only takes cells that are DIRECT children of a row.
    const Entry* parent = depth_ > 0 ? &stack_[depth_ - 1] : nullptr;
    if (parent != nullptr && parent->row >= 0) {
      if (cell_count_ == cells_.size()) cells_.emplace_back();
      cells_[cell_count_].clear();
      entry.cell = static_cast<int32_t>(cell_count_);
      row_cells_[static_cast<size_t>(parent->row)].push_back(entry.cell);
      open_cells_.push_back(entry.cell);
      ++cell_count_;
    }
  }

  ++depth_;
  if (self_closing || IsVoidTag(lower_tag)) {
    // Childless element: the DOM walk visits it and immediately
    // unwinds, emitting the trailing block break.
    CloseInnermost();
  }
}

void StreamScanner::CloseInnermost() {
  PAE_DCHECK(depth_ > 0);
  Entry& entry = stack_[depth_ - 1];
  if (entry.cell >= 0) {
    PAE_DCHECK(!open_cells_.empty() && open_cells_.back() == entry.cell);
    open_cells_.pop_back();
  }
  if (entry.table >= 0) {
    PAE_DCHECK(!active_tables_.empty() &&
               active_tables_.back() == entry.table);
    active_tables_.pop_back();
  }
  --depth_;
  // Trailing block '\n' goes to the page text and the still-open outer
  // cells — exactly what ExtractTextRec emits after the subtree. The
  // element's own cell buffer is already final: its ExtractText(cell)
  // counterpart would only add a trailing '\n' that CollapseCellText
  // strips anyway.
  if (entry.block) BlockBreak();
}

void StreamScanner::BuildTables() {
  tables_.clear();
  TableGrid grid;
  for (size_t t = 0; t < table_count_; ++t) {
    grid.clear();
    for (const int32_t row : table_rows_[t]) {
      const std::vector<int32_t>& cell_ids =
          row_cells_[static_cast<size_t>(row)];
      if (cell_ids.empty()) continue;  // ExtractGrid drops cell-less rows
      std::vector<std::string> cells;
      cells.reserve(cell_ids.size());
      for (const int32_t cell : cell_ids) {
        cells.push_back(CollapseCellText(cells_[static_cast<size_t>(cell)]));
      }
      grid.push_back(std::move(cells));
    }
    DictionaryTable dict;
    if (GridToDictionary(grid, &dict)) tables_.push_back(std::move(dict));
  }
}

void StreamScanner::Scan(std::string_view html) {
  text_.clear();
  depth_ = 0;
  active_tables_.clear();
  open_cells_.clear();
  table_count_ = 0;
  row_count_ = 0;
  cell_count_ = 0;

  // The tag soup below mirrors ParseHtml token for token; every i/gt
  // advance matches the DOM parser so both consume identical spans.
  size_t i = 0;
  const size_t n = html.size();
  while (i < n) {
    if (html[i] != '<') {
      size_t lt = html.find('<', i);
      if (lt == std::string_view::npos) lt = n;
      AppendTextRun(html.substr(i, lt - i));
      i = lt;
      continue;
    }
    if (html.compare(i, 4, "<!--") == 0) {
      const size_t end = html.find("-->", i + 4);
      i = (end == std::string_view::npos) ? n : end + 3;
      continue;
    }
    if (i + 1 < n && (html[i + 1] == '!' || html[i + 1] == '?')) {
      const size_t end = html.find('>', i + 1);
      i = (end == std::string_view::npos) ? n : end + 1;
      continue;
    }
    const size_t gt = html.find('>', i + 1);
    if (gt == std::string_view::npos) {
      AppendTextRun(html.substr(i));
      break;
    }
    std::string_view inner = html.substr(i + 1, gt - i - 1);
    const bool closing = !inner.empty() && inner[0] == '/';
    if (closing) inner.remove_prefix(1);
    const bool self_closing = !inner.empty() && inner.back() == '/';
    if (self_closing) inner.remove_suffix(1);

    size_t name_end = 0;
    while (name_end < inner.size() &&
           (std::isalnum(static_cast<unsigned char>(inner[name_end])) != 0)) {
      ++name_end;
    }
    tag_scratch_.clear();
    for (size_t c = 0; c < name_end; ++c) {
      char ch = inner[c];
      if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
      tag_scratch_.push_back(ch);
    }
    i = gt + 1;
    if (tag_scratch_.empty()) continue;

    if (closing) {
      // Pop to the matching open element, if present on the stack;
      // implicit closes unwind inner elements first, exactly like the
      // DOM walk leaving those subtrees.
      size_t match = depth_;
      while (match > 0 && stack_[match - 1].tag != tag_scratch_) --match;
      if (match > 0) {
        while (depth_ >= match) CloseInnermost();
      }
      continue;
    }

    if (tag_scratch_ == "script" || tag_scratch_ == "style") {
      // Raw-text element: skip to the close tag, drop the body. The
      // element itself is neither block nor a capture target, so it
      // leaves no trace in the outputs.
      const std::string close = "</" + tag_scratch_;
      if (const size_t found = html.find(close, i);
          found == std::string_view::npos) {
        i = n;
      } else {
        const size_t end = html.find('>', found);
        i = (end == std::string_view::npos) ? n : end + 1;
      }
      continue;
    }

    OpenElement(tag_scratch_, self_closing);
  }

  // End of input closes every element still open, emitting the same
  // trailing block breaks the DOM walk produces on its way out.
  while (depth_ > 0) CloseInnermost();

  BuildTables();
}

}  // namespace pae::html
