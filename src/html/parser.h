#ifndef PAE_HTML_PARSER_H_
#define PAE_HTML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pae::html {

/// One node of the lightweight DOM produced by ParseHtml. Attribute
/// values beyond the tag name are not needed by the pipeline and are
/// discarded during parsing.
struct HtmlNode {
  enum class Type { kElement, kText };

  Type type = Type::kElement;
  std::string tag;   // lowercase tag name; "#root" for the synthetic root
  std::string text;  // text content for kText nodes, entities decoded
  std::vector<std::unique_ptr<HtmlNode>> children;

  bool IsElement(std::string_view name) const {
    return type == Type::kElement && tag == name;
  }
};

/// True for tags ExtractText treats as block-level ('\n' inserted at
/// their boundaries). Shared by the DOM walk and the streaming scanner
/// so the two text extractions cannot drift.
bool IsBlockTag(std::string_view tag);

/// True for HTML void elements (br, img, ...) which never take
/// children.
bool IsVoidTag(std::string_view tag);

/// Parses HTML into a DOM tree rooted at a synthetic "#root" element.
/// The parser is tolerant: unmatched close tags are ignored, unclosed
/// elements are closed at end of input, comments/doctype are skipped,
/// and script/style bodies are treated as raw text and dropped.
std::unique_ptr<HtmlNode> ParseHtml(std::string_view html);

/// Decodes the basic named entities (&amp; &lt; &gt; &quot; &apos;
/// &nbsp;) and numeric character references.
std::string DecodeEntities(std::string_view s);

/// Extracts the visible text of `node` (recursively), inserting '\n' at
/// block-element boundaries (p, div, br, li, tr, table, h1–h6, section)
/// and ' ' at cell boundaries, so downstream sentence splitting sees
/// natural breaks.
std::string ExtractText(const HtmlNode& node);

/// Returns all descendant elements (including `node` itself) with the
/// given lowercase tag name, in document order.
std::vector<const HtmlNode*> FindAll(const HtmlNode& node,
                                     std::string_view tag);

}  // namespace pae::html

#endif  // PAE_HTML_PARSER_H_
