#include "html/table_extractor.h"

#include "util/strings.h"

namespace pae::html {

std::string CollapseCellText(std::string_view raw) {
  std::string collapsed;
  collapsed.reserve(raw.size());
  bool last_space = false;
  for (char c : raw) {
    if (c == '\n' || c == '\t' || c == ' ') {
      if (!last_space && !collapsed.empty()) collapsed.push_back(' ');
      last_space = true;
    } else {
      collapsed.push_back(c);
      last_space = false;
    }
  }
  return std::string(StripAsciiWhitespace(collapsed));
}

namespace {
/// Collects the text of one cell, collapsing internal newlines to spaces.
std::string CellText(const HtmlNode& cell) {
  return CollapseCellText(ExtractText(cell));
}
}  // namespace

TableGrid ExtractGrid(const HtmlNode& table) {
  TableGrid grid;
  for (const HtmlNode* tr : FindAll(table, "tr")) {
    std::vector<std::string> row;
    for (const auto& child : tr->children) {
      if (child->IsElement("td") || child->IsElement("th")) {
        row.push_back(CellText(*child));
      }
    }
    if (!row.empty()) grid.push_back(std::move(row));
  }
  return grid;
}

bool GridToDictionary(const TableGrid& grid, DictionaryTable* out) {
  out->entries.clear();
  if (grid.empty()) return false;

  // Case 1: n rows × 2 columns — key in column 0.
  bool two_cols = grid.size() >= 2;
  for (const auto& row : grid) {
    if (row.size() != 2) {
      two_cols = false;
      break;
    }
  }
  if (two_cols) {
    out->entries.reserve(grid.size());
    for (const auto& row : grid) {
      if (row[0].empty() || row[1].empty()) continue;
      out->entries.emplace_back(row[0], row[1]);
    }
    return !out->entries.empty();
  }

  // Case 2: 2 rows × n columns — key in row 0.
  if (grid.size() == 2 && grid[0].size() == grid[1].size() &&
      grid[0].size() >= 2) {
    out->entries.reserve(grid[0].size());
    for (size_t c = 0; c < grid[0].size(); ++c) {
      if (grid[0][c].empty() || grid[1][c].empty()) continue;
      out->entries.emplace_back(grid[0][c], grid[1][c]);
    }
    return !out->entries.empty();
  }
  return false;
}

std::vector<DictionaryTable> ExtractDictionaryTables(const HtmlNode& root) {
  std::vector<DictionaryTable> out;
  for (const HtmlNode* table : FindAll(root, "table")) {
    TableGrid grid = ExtractGrid(*table);
    DictionaryTable dict;
    if (GridToDictionary(grid, &dict)) out.push_back(std::move(dict));
  }
  return out;
}

}  // namespace pae::html
