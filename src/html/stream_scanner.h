#ifndef PAE_HTML_STREAM_SCANNER_H_
#define PAE_HTML_STREAM_SCANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "html/table_extractor.h"

namespace pae::html {

/// One-pass page scanner: produces the visible text and the dictionary
/// tables of a product page without materializing a DOM. This is the
/// hot path of streaming ingestion (core/ingest.h) — per page it saves
/// the node-tree allocation, the tag strings, and the two tree walks
/// (ExtractText + ExtractDictionaryTables) the barrier pipeline pays.
///
/// Equivalence contract, enforced by tests/stream_scanner_test.cc with
/// a randomized differential against the DOM path: after Scan(html),
///   text()   is byte-identical to ExtractText(*ParseHtml(html)), and
///   tables() compares equal to ExtractDictionaryTables(*ParseHtml(html)).
/// The scanner replicates ParseHtml's tolerant behavior exactly:
/// unmatched close tags are ignored, unclosed elements close at end of
/// input, comments/doctype are skipped, script/style bodies are
/// dropped, and void/self-closing elements never take children.
class StreamScanner {
 public:
  void Scan(std::string_view html);

  /// Valid until the next Scan call.
  const std::string& text() const { return text_; }
  /// Mutable so callers can move the tables out; reset by Scan.
  std::vector<DictionaryTable>& tables() { return tables_; }

 private:
  /// One open element. `tag` keeps its capacity across pages (the stack
  /// is indexed by depth_ and never shrinks), so steady-state scanning
  /// does not allocate per element.
  struct Entry {
    std::string tag;
    bool block = false;
    int32_t table = -1;  // index into table_rows_ if this is a <table>
    int32_t row = -1;    // index into row_cells_ if this is a <tr>
    int32_t cell = -1;   // index into cells_ if this is a td/th cell
  };

  void AppendTextRun(std::string_view raw);
  /// '\n'-at-block-boundary rule of ExtractTextRec, applied to the page
  /// text and every open cell capture with per-sink emptiness checks.
  void BlockBreak();
  void OpenElement(std::string_view lower_tag, bool self_closing);
  /// Closes the innermost open element (cell finalize, table unwind,
  /// trailing block break).
  void CloseInnermost();
  void BuildTables();

  std::string text_;
  std::vector<DictionaryTable> tables_;

  std::vector<Entry> stack_;  // grows, never shrinks; depth_ is live size
  size_t depth_ = 0;
  std::vector<int32_t> active_tables_;  // stack of open table ids
  std::vector<int32_t> open_cells_;     // stack of open cell ids

  // Arena-style per-page builders, reused across Scan calls.
  std::vector<std::vector<int32_t>> table_rows_;  // table id -> row ids
  std::vector<std::vector<int32_t>> row_cells_;   // row id -> cell ids
  std::vector<std::string> cells_;                // cell id -> raw text
  size_t table_count_ = 0;
  size_t row_count_ = 0;
  size_t cell_count_ = 0;

  std::string tag_scratch_;
};

}  // namespace pae::html

#endif  // PAE_HTML_STREAM_SCANNER_H_
