#ifndef PAE_SERVE_SERVER_H_
#define PAE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/generation.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pae::serve {

struct ServerOptions {
  /// Exactly one of the two listeners must be configured: a unix-domain
  /// socket path, or a loopback TCP port (0 = ephemeral, resolved port
  /// readable via Server::tcp_port()).
  std::string unix_path;
  int tcp_port = -1;

  /// Request worker threads. Each worker owns one engine Scratch for
  /// its whole lifetime and serves one connection at a time.
  int workers = 4;

  /// Per-frame payload ceiling (corrupt length words above it close the
  /// connection before any allocation).
  uint32_t max_frame_bytes = kMaxFrameBytes;

  /// Options applied to engines loaded via the kPublish admin opcode.
  core::EngineOptions publish_engine_options;
};

/// The pae-serve daemon core: a listener + accept thread + fixed worker
/// pool serving the length-prefixed protocol (protocol.h), with all
/// extraction running against immutable ExtractionEngine snapshots
/// behind a GenerationCell.
///
/// Connection model: the accept thread enqueues accepted sockets; each
/// worker dequeues one connection and serves it request-by-request
/// until the peer hangs up or breaks the protocol. Persistent
/// connections beyond the pool size wait in the accept queue until a
/// worker frees up — clients that hold connections open (pae-loadgen)
/// should not open more of them than the server has workers. A
/// malformed frame
/// (truncated, oversize length word, undecodable payload, trailing
/// bytes) latches that connection's error — counted in
/// serve.protocol_errors — and closes it; every other connection keeps
/// being served.
///
/// Hot swap: Publish() (or the kPublish opcode) installs a new engine
/// generation; requests already in flight drain against the generation
/// their lease pinned. Stop() (or the kShutdown opcode) stops accepting,
/// shuts down queued + in-flight connections, and joins every thread.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and spawns the accept + worker threads. Serving
  /// requests before the first Publish yields FailedPrecondition
  /// responses ("no model published").
  Status Start();

  /// Idempotent; blocks until every thread has joined.
  void Stop();

  /// Non-blocking stop signal, safe to call from a worker thread (a
  /// kShutdown request uses it). The owner still calls Stop() to join.
  void RequestStop();

  /// Blocks until a stop was requested (by Stop, RequestStop or a
  /// kShutdown request). The daemon main thread parks here.
  void WaitUntilStopRequested();

  /// True from Start() until Stop() / a kShutdown request.
  bool running() const { return running_.load(std::memory_order_seq_cst); }

  /// True once a stop was requested (threads may still be draining).
  bool stop_requested() const {
    return stopping_.load(std::memory_order_seq_cst);
  }

  /// Publishes a new engine generation (also available on the wire via
  /// kPublish). Returns the new generation number.
  uint64_t Publish(std::shared_ptr<const core::ExtractionEngine> engine);

  /// The resolved TCP port (only meaningful for tcp listeners).
  int tcp_port() const { return resolved_tcp_port_; }
  uint64_t generation() const { return generations_.generation(); }

  /// Point-in-time counters (also exported as serve.* metrics).
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
    uint64_t hot_swaps = 0;
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection until EOF/error/shutdown. Returns false if
  /// the server should stop (kShutdown was received).
  bool ServeConnection(Fd fd, core::ExtractionEngine::Scratch* scratch);
  /// Handles one decoded request; fills `response`. Returns false for
  /// kShutdown (after the response is filled).
  bool HandleRequest(const Request& request,
                     core::ExtractionEngine::Scratch* scratch,
                     std::string* response);

  ServerOptions options_;
  int resolved_tcp_port_ = -1;
  Fd listener_;

  GenerationCell generations_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Accepted connections waiting for a worker.
  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  std::deque<Fd> pending_ PAE_GUARDED_BY(queue_mutex_);

  /// Connections currently being served, so Stop() can unblock workers
  /// parked in read().
  std::vector<int> active_fds_ PAE_GUARDED_BY(queue_mutex_);

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> hot_swaps_{0};

  util::Counter* requests_counter_;
  util::Counter* errors_counter_;
  util::Counter* connections_counter_;
  util::Counter* swaps_counter_;
  util::Histogram* request_seconds_;
  /// Model-load-to-engine-ready time of kPublish hot swaps
  /// ("serve.publish.load_seconds"): the observable difference between
  /// the legacy parse and the mmap'ed `.paez` path.
  util::Histogram* publish_load_seconds_;
};

}  // namespace pae::serve

#endif  // PAE_SERVE_SERVER_H_
