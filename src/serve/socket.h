#ifndef PAE_SERVE_SOCKET_H_
#define PAE_SERVE_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pae::serve {

/// Hard ceiling on one frame's payload (64 MiB). Deliberately far below
/// util's kMaxSerialElements: a length word at or above this — the
/// corrupt/adversarial range the protocol tests sweep — is rejected
/// before any allocation happens.
inline constexpr uint32_t kMaxFrameBytes = 1u << 26;

/// Thin RAII wrapper around a socket file descriptor. Move-only; the
/// destructor closes. All IO helpers retry EINTR and never throw.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }
  /// Releases ownership without closing.
  int Release();
  void Close();
  /// shutdown(2) both directions — unblocks a peer (or our own thread)
  /// parked in read() without racing the close.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// A bound, listening server socket: a unix-domain socket when `path`
/// is used, loopback TCP when `port` is used (0 picks an ephemeral
/// port; the resolved one is returned through *resolved_port).
Result<Fd> ListenUnix(const std::string& path, int backlog = 64);
Result<Fd> ListenTcp(int port, int* resolved_port, int backlog = 64);

/// Blocking accept with a poll timeout so accept loops can observe a
/// stop flag: returns an invalid Fd (not an error) when the timeout
/// expires with no pending connection.
Result<Fd> AcceptWithTimeout(const Fd& listener, int timeout_ms);

/// Client-side connect.
Result<Fd> ConnectUnix(const std::string& path);
Result<Fd> ConnectTcp(const std::string& host, int port);

/// Reads exactly `size` bytes. kNotFound signals clean EOF before the
/// first byte (peer closed between frames); kOutOfRange signals EOF
/// mid-buffer (truncated frame); kInternal is an errno failure.
Status ReadFull(const Fd& fd, void* data, size_t size);
/// Writes exactly `size` bytes (SIGPIPE is suppressed per call).
Status WriteFull(const Fd& fd, const void* data, size_t size);

/// Frame IO: a u32 little-endian payload length followed by the
/// payload. ReadFrame mirrors BinaryReader's corrupt-length discipline:
/// a length word above `max_bytes` fails with OutOfRange before any
/// allocation, EOF between frames is kNotFound, EOF inside a frame is
/// kOutOfRange.
Status ReadFrame(const Fd& fd, std::string* payload,
                 uint32_t max_bytes = kMaxFrameBytes);
Status WriteFrame(const Fd& fd, const std::string& payload,
                  uint32_t max_bytes = kMaxFrameBytes);

}  // namespace pae::serve

#endif  // PAE_SERVE_SOCKET_H_
