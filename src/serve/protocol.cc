#include "serve/protocol.h"

#include "util/wire.h"

namespace pae::serve {

namespace {

using util::WireReader;
using util::WireWriter;

std::string BodylessRequest(Op op) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(op));
  return writer.data();
}

/// Starts a response payload: envelope for an Ok response of `op`.
WireWriter OkEnvelope(Op op) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(op) | kResponseBit);
  writer.PutU8(static_cast<uint8_t>(StatusCode::kOk));
  writer.PutString("");
  return writer;
}

}  // namespace

std::string EncodeExtractRequest(const ExtractRequest& request) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(Op::kExtract));
  writer.PutString(request.product_id);
  writer.PutString(request.html);
  return writer.data();
}

std::string EncodePingRequest() { return BodylessRequest(Op::kPing); }
std::string EncodeStatsRequest() { return BodylessRequest(Op::kStats); }
std::string EncodeShutdownRequest() {
  return BodylessRequest(Op::kShutdown);
}

std::string EncodePublishRequest(const PublishRequest& request) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(Op::kPublish));
  writer.PutString(request.model_path);
  writer.PutString(request.resources_dir);
  return writer.data();
}

std::string EncodeErrorResponse(Op op, const Status& status) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(op) | kResponseBit);
  writer.PutU8(static_cast<uint8_t>(status.code()));
  writer.PutString(status.message());
  return writer.data();
}

std::string EncodeExtractResponse(const ExtractResponse& response) {
  WireWriter writer = OkEnvelope(Op::kExtract);
  writer.PutU64(response.generation);
  writer.PutU32(static_cast<uint32_t>(response.triples.size()));
  for (const core::Triple& triple : response.triples) {
    writer.PutString(triple.attribute);
    writer.PutString(triple.value);
  }
  return writer.data();
}

std::string EncodePingResponse(const PingResponse& response) {
  WireWriter writer = OkEnvelope(Op::kPing);
  writer.PutU64(response.generation);
  writer.PutString(response.model_name);
  return writer.data();
}

std::string EncodeStatsResponse(const StatsResponse& response) {
  WireWriter writer = OkEnvelope(Op::kStats);
  writer.PutU64(response.generation);
  writer.PutU64(response.requests);
  writer.PutU64(response.protocol_errors);
  writer.PutU64(response.connections);
  writer.PutU64(response.hot_swaps);
  return writer.data();
}

std::string EncodePublishResponse(uint64_t generation) {
  WireWriter writer = OkEnvelope(Op::kPublish);
  writer.PutU64(generation);
  return writer.data();
}

std::string EncodeShutdownResponse() {
  return OkEnvelope(Op::kShutdown).data();
}

Result<Request> DecodeRequest(const std::string& payload) {
  WireReader reader(payload);
  uint8_t op = 0;
  if (!reader.GetU8(&op)) {
    return Status::InvalidArgument("request too short for an opcode");
  }
  Request request;
  switch (op) {
    case static_cast<uint8_t>(Op::kExtract):
      request.op = Op::kExtract;
      if (!reader.GetString(&request.extract.product_id) ||
          !reader.GetString(&request.extract.html)) {
        return reader.status();
      }
      break;
    case static_cast<uint8_t>(Op::kPing):
      request.op = Op::kPing;
      break;
    case static_cast<uint8_t>(Op::kStats):
      request.op = Op::kStats;
      break;
    case static_cast<uint8_t>(Op::kPublish):
      request.op = Op::kPublish;
      if (!reader.GetString(&request.publish.model_path) ||
          !reader.GetString(&request.publish.resources_dir)) {
        return reader.status();
      }
      break;
    case static_cast<uint8_t>(Op::kShutdown):
      request.op = Op::kShutdown;
      break;
    default:
      return Status::InvalidArgument("unknown opcode " + std::to_string(op));
  }
  if (!reader.ExpectEnd()) return reader.status();
  return request;
}

Status DecodeResponseEnvelope(const std::string& payload, Op expected_op,
                              size_t* body_pos) {
  WireReader reader(payload);
  uint8_t op = 0;
  uint8_t code = 0;
  std::string message;
  if (!reader.GetU8(&op) || !reader.GetU8(&code) ||
      !reader.GetString(&message)) {
    return Status::InvalidArgument("malformed response envelope");
  }
  if (op != (static_cast<uint8_t>(expected_op) | kResponseBit)) {
    return Status::InvalidArgument("response opcode mismatch: got " +
                                   std::to_string(op));
  }
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    if (code > static_cast<uint8_t>(StatusCode::kUnimplemented)) {
      return Status::InvalidArgument("response carries unknown status code " +
                                     std::to_string(code));
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  *body_pos = payload.size() - reader.remaining();
  return Status::Ok();
}

Result<ExtractResponse> DecodeExtractResponse(
    const std::string& payload, const std::string& product_id) {
  size_t body_pos = 0;
  PAE_RETURN_IF_ERROR(
      DecodeResponseEnvelope(payload, Op::kExtract, &body_pos));
  WireReader reader(std::string_view(payload).substr(body_pos));
  ExtractResponse response;
  uint32_t count = 0;
  if (!reader.GetU64(&response.generation) || !reader.GetU32(&count)) {
    return reader.status();
  }
  response.triples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    core::Triple triple;
    triple.product_id = product_id;
    if (!reader.GetString(&triple.attribute) ||
        !reader.GetString(&triple.value)) {
      return reader.status();
    }
    response.triples.push_back(std::move(triple));
  }
  if (!reader.ExpectEnd()) return reader.status();
  return response;
}

Result<PingResponse> DecodePingResponse(const std::string& payload) {
  size_t body_pos = 0;
  PAE_RETURN_IF_ERROR(DecodeResponseEnvelope(payload, Op::kPing, &body_pos));
  WireReader reader(std::string_view(payload).substr(body_pos));
  PingResponse response;
  if (!reader.GetU64(&response.generation) ||
      !reader.GetString(&response.model_name) || !reader.ExpectEnd()) {
    return reader.status();
  }
  return response;
}

Result<StatsResponse> DecodeStatsResponse(const std::string& payload) {
  size_t body_pos = 0;
  PAE_RETURN_IF_ERROR(DecodeResponseEnvelope(payload, Op::kStats, &body_pos));
  WireReader reader(std::string_view(payload).substr(body_pos));
  StatsResponse response;
  if (!reader.GetU64(&response.generation) ||
      !reader.GetU64(&response.requests) ||
      !reader.GetU64(&response.protocol_errors) ||
      !reader.GetU64(&response.connections) ||
      !reader.GetU64(&response.hot_swaps) || !reader.ExpectEnd()) {
    return reader.status();
  }
  return response;
}

Result<uint64_t> DecodePublishResponse(const std::string& payload) {
  size_t body_pos = 0;
  PAE_RETURN_IF_ERROR(
      DecodeResponseEnvelope(payload, Op::kPublish, &body_pos));
  WireReader reader(std::string_view(payload).substr(body_pos));
  uint64_t generation = 0;
  if (!reader.GetU64(&generation) || !reader.ExpectEnd()) {
    return reader.status();
  }
  return generation;
}

Status DecodeShutdownResponse(const std::string& payload) {
  size_t body_pos = 0;
  return DecodeResponseEnvelope(payload, Op::kShutdown, &body_pos);
}

}  // namespace pae::serve
