#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/engine.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace pae::serve {

namespace {

uint64_t Fnv1a(uint64_t h, std::string_view s) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= kPrime;
  }
  // Field separator: hash a byte no UTF-8 string contains, so
  // ("ab", "c") and ("a", "bc") cannot collide structurally.
  h ^= 0xFF;
  h *= kPrime;
  return h;
}

/// Smallest (2^k - 1) >= n - 1: the NURand `A` parameter for an
/// n-element working set (TPC-C uses fixed A per table size; deriving
/// it keeps any corpus size well-formed).
uint64_t NURandA(uint64_t n) {
  uint64_t a = 1;
  while (a < n - 1) a = (a << 1) | 1;
  return a;
}

/// Per-thread tally, merged under a mutex at thread exit. Sums and XORs
/// only — merge order cannot change the totals.
struct ThreadTally {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t transport_errors = 0;
  uint64_t triples = 0;
  uint64_t checksum = 0;
  uint64_t generation_min = 0;
  uint64_t generation_max = 0;
  std::vector<uint64_t> buckets;
  double max_seconds = 0;
};

void ObserveLatency(std::vector<uint64_t>* buckets,
                    const std::vector<double>& bounds, double seconds) {
  size_t i = 0;
  while (i < bounds.size() && seconds > bounds[i]) ++i;
  ++(*buckets)[i];
}

}  // namespace

uint64_t NURand(uint64_t a, uint64_t c, uint64_t n, Rng& rng) {
  PAE_CHECK_GT(n, 0u);
  const uint64_t x = rng.NextBounded(a + 1);
  const uint64_t y = rng.NextBounded(n);
  return ((x | y) + c) % n;
}

std::vector<RequestSlot> BuildSchedule(const LoadgenOptions& options,
                                       size_t n_products) {
  PAE_CHECK_GT(n_products, 0u);
  Rng rng(options.seed);
  const uint64_t a = NURandA(n_products);
  // The hot-item offset: fixed for the whole run, different per seed.
  const uint64_t c = rng.NextBounded(n_products);
  std::vector<RequestSlot> schedule;
  schedule.reserve(static_cast<size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    RequestSlot slot;
    slot.product = static_cast<uint32_t>(NURand(a, c, n_products, rng));
    slot.is_extract = rng.Bernoulli(options.extract_fraction);
    schedule.push_back(slot);
  }
  return schedule;
}

uint64_t TripleHash(const core::Triple& triple) {
  constexpr uint64_t kOffset = 14695981039346656037ULL;
  uint64_t h = kOffset;
  h = Fnv1a(h, triple.product_id);
  h = Fnv1a(h, triple.attribute);
  h = Fnv1a(h, triple.value);
  return h;
}

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q,
                           bool* saturated) {
  PAE_CHECK_EQ(counts.size(), bounds.size() + 1);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds.size()) {
      // The quantile falls in the +inf overflow bucket: the histogram
      // has no upper edge to interpolate against, so the best we can
      // report is the last finite bound — an *underestimate*. Flag it
      // instead of silently passing the clamp off as a measurement.
      if (saturated != nullptr) *saturated = true;
      return bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double frac =
        (target - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.back();
}

Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::vector<LoadgenProduct>& products,
    const std::function<Result<Client>()>& connect,
    const std::function<void()>& swap_hook) {
  if (products.empty()) {
    return Status::InvalidArgument("loadgen needs at least one product");
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (options.warmup_requests > options.requests) {
    return Status::InvalidArgument("warmup_requests exceeds requests");
  }

  const std::vector<RequestSlot> schedule =
      BuildSchedule(options, products.size());
  const std::vector<double>& bounds = core::RequestLatencyBounds();

  // Pre-connect every driver thread so a refused connection fails the
  // run up front instead of skewing the measured phase.
  std::vector<Client> clients;
  clients.reserve(static_cast<size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) {
    Result<Client> client = connect();
    if (!client.ok()) return client.status();
    clients.push_back(std::move(client.value()));
  }

  util::Mutex merge_mutex;
  LoadgenReport report;
  report.bounds = bounds;
  report.bucket_counts.assign(bounds.size() + 1, 0);

  std::atomic<int64_t> completed{0};
  std::atomic<bool> swap_fired{false};
  const auto start = std::chrono::steady_clock::now();
  // The measured phase begins once the warmup prefix has fully drained;
  // sampled by the first thread to observe the transition.
  std::atomic<int64_t> measured_start_ns{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      Client& client = clients[static_cast<size_t>(t)];
      ThreadTally tally;
      tally.buckets.assign(bounds.size() + 1, 0);
      for (size_t i = static_cast<size_t>(t); i < schedule.size();
           i += static_cast<size_t>(options.threads)) {
        const RequestSlot& slot = schedule[i];
        const LoadgenProduct& product = products[slot.product];
        if (options.open_loop_qps > 0) {
          const auto release =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) /
                              options.open_loop_qps));
          std::this_thread::sleep_until(release);
        }
        const bool measured =
            i >= static_cast<size_t>(options.warmup_requests);
        const auto sent_at = std::chrono::steady_clock::now();
        ++tally.sent;
        if (slot.is_extract) {
          Result<ExtractResponse> response =
              client.Extract(product.product_id, product.html);
          if (response.ok()) {
            ++tally.ok;
            const ExtractResponse& r = response.value();
            tally.triples += r.triples.size();
            for (const core::Triple& triple : r.triples) {
              tally.checksum += TripleHash(triple);
            }
            if (tally.generation_min == 0 ||
                r.generation < tally.generation_min) {
              tally.generation_min = r.generation;
            }
            tally.generation_max =
                std::max(tally.generation_max, r.generation);
          } else if (response.status().code() == StatusCode::kInternal ||
                     response.status().code() == StatusCode::kNotFound) {
            ++tally.transport_errors;
          } else {
            ++tally.errors;
          }
        } else {
          Result<PingResponse> response = client.Ping();
          if (response.ok()) {
            ++tally.ok;
          } else {
            ++tally.transport_errors;
          }
        }
        if (measured) {
          const double seconds =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - sent_at)
                  .count();
          ObserveLatency(&tally.buckets, bounds, seconds);
          tally.max_seconds = std::max(tally.max_seconds, seconds);
          int64_t expected = 0;
          measured_start_ns.compare_exchange_strong(
              expected,
              std::chrono::duration_cast<std::chrono::nanoseconds>(sent_at -
                                                                   start)
                  .count(),
              std::memory_order_seq_cst);
        }
        const int64_t done =
            completed.fetch_add(1, std::memory_order_seq_cst) + 1;
        if (options.swap_at >= 0 && swap_hook != nullptr &&
            done >= options.swap_at &&
            !swap_fired.exchange(true, std::memory_order_seq_cst)) {
          swap_hook();
        }
      }
      util::MutexLock lock(merge_mutex);
      report.requests_sent += tally.sent;
      report.ok_responses += tally.ok;
      report.error_responses += tally.errors;
      report.transport_errors += tally.transport_errors;
      report.triples += tally.triples;
      report.checksum += tally.checksum;
      if (tally.generation_min != 0 &&
          (report.generation_min == 0 ||
           tally.generation_min < report.generation_min)) {
        report.generation_min = tally.generation_min;
      }
      report.generation_max =
          std::max(report.generation_max, tally.generation_max);
      for (size_t b = 0; b < tally.buckets.size(); ++b) {
        report.bucket_counts[b] += tally.buckets[b];
      }
      report.max_seconds = std::max(report.max_seconds, tally.max_seconds);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  const double total_elapsed =
      std::chrono::duration<double>(end - start).count();
  const double measured_offset =
      static_cast<double>(measured_start_ns.load(std::memory_order_seq_cst)) *
      1e-9;
  report.elapsed_seconds =
      options.warmup_requests > 0
          ? std::max(total_elapsed - measured_offset, 1e-9)
          : total_elapsed;
  uint64_t measured_count = 0;
  for (uint64_t c : report.bucket_counts) measured_count += c;
  report.qps = report.elapsed_seconds > 0
                   ? static_cast<double>(measured_count) /
                         report.elapsed_seconds
                   : 0;
  report.p50_seconds = QuantileFromBuckets(report.bounds,
                                           report.bucket_counts, 0.50,
                                           &report.saturated);
  report.p95_seconds = QuantileFromBuckets(report.bounds,
                                           report.bucket_counts, 0.95,
                                           &report.saturated);
  report.p99_seconds = QuantileFromBuckets(report.bounds,
                                           report.bucket_counts, 0.99,
                                           &report.saturated);
  return report;
}

}  // namespace pae::serve
