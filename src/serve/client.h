#ifndef PAE_SERVE_CLIENT_H_
#define PAE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/status.h"

namespace pae::serve {

/// Blocking single-connection client for the pae-serve protocol. One
/// Client == one socket; it is not thread-safe (loadgen gives each
/// driver thread its own). Any transport or protocol error poisons the
/// connection — subsequent calls keep failing — matching the server's
/// own per-connection latching.
class Client {
 public:
  static Result<Client> ConnectUnixSocket(const std::string& path);
  static Result<Client> ConnectTcpSocket(const std::string& host, int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<ExtractResponse> Extract(std::string_view product_id,
                                  std::string_view html);
  Result<PingResponse> Ping();
  Result<StatsResponse> Stats();
  /// Asks the server to load + publish a model; returns the new
  /// generation.
  Result<uint64_t> Publish(const std::string& model_path,
                           const std::string& resources_dir);
  /// Asks the daemon to stop; Ok once the server acknowledged.
  Status Shutdown();

  /// One raw round trip: sends `payload` as a frame, reads one response
  /// frame. The adversarial protocol tests use this (and the socket
  /// helpers directly) to send bytes no well-formed client would.
  Result<std::string> RoundTrip(const std::string& payload);

  const Fd& fd() const { return fd_; }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
};

}  // namespace pae::serve

#endif  // PAE_SERVE_CLIENT_H_
