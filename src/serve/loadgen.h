#ifndef PAE_SERVE_LOADGEN_H_
#define PAE_SERVE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/client.h"
#include "util/rng.h"
#include "util/status.h"

namespace pae::serve {

/// Deterministic load-driver configuration. Everything that shapes the
/// request stream is derived from `seed` before any thread starts, so
/// the same seed and product set produce the identical request sequence
/// at every thread count.
struct LoadgenOptions {
  uint64_t seed = 42;
  /// Driver threads; request i is executed by thread i % threads.
  int threads = 1;
  /// Total requests, including the warmup prefix.
  int requests = 1000;
  /// Leading requests treated as the cold/warm-up phase: they count
  /// toward totals and checksums but not toward latency buckets or QPS.
  int warmup_requests = 0;
  /// Fraction of requests that are kExtract; the rest are kPing.
  double extract_fraction = 1.0;
  /// 0 = closed loop (each thread fires back to back). > 0 = open loop:
  /// request i is released at i / open_loop_qps seconds after start.
  double open_loop_qps = 0.0;
  /// When >= 0, `swap_hook` (RunLoadgen argument) fires exactly once, as
  /// soon as this many requests have completed.
  int64_t swap_at = -1;
};

/// One page of the driver's working set.
struct LoadgenProduct {
  std::string product_id;
  std::string html;
};

/// One precomputed request: which product, which opcode.
struct RequestSlot {
  uint32_t product = 0;
  bool is_extract = true;
};

struct LoadgenReport {
  uint64_t requests_sent = 0;
  uint64_t ok_responses = 0;
  uint64_t error_responses = 0;
  uint64_t transport_errors = 0;
  uint64_t triples = 0;
  /// Order-independent aggregate over every extract response: the sum of
  /// per-triple FNV-1a hashes. Identical runs (same seed, same model)
  /// produce the identical checksum at any thread count.
  uint64_t checksum = 0;
  /// Generation span observed across extract responses (0/0 when none).
  uint64_t generation_min = 0;
  uint64_t generation_max = 0;

  /// Measured (post-warmup) phase only.
  double elapsed_seconds = 0;
  double qps = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double p99_seconds = 0;
  double max_seconds = 0;
  /// True when any reported quantile landed in the histogram's +inf
  /// overflow bucket: that quantile is clamped to the last finite bound
  /// and therefore underestimates the true latency.
  bool saturated = false;
  /// "le" latency buckets (core::RequestLatencyBounds upper bounds +
  /// one overflow slot), measured phase only.
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
};

/// NURand-style skewed index in [0, n): the TPC-C non-uniform random
/// trick — OR of two uniform draws biases toward indices sharing high
/// bits with hot items — adapted here for product popularity so cache
/// behaviour under load resembles a real catalog, not a uniform sweep.
/// `a` must be (2^k - 1) >= n - 1; `c` is a per-run constant.
uint64_t NURand(uint64_t a, uint64_t c, uint64_t n, Rng& rng);

/// Precomputes the full request schedule from options.seed. Pure:
/// thread-count independent by construction.
std::vector<RequestSlot> BuildSchedule(const LoadgenOptions& options,
                                       size_t n_products);

/// Order-independent hash of one extracted triple (FNV-1a over
/// product_id / attribute / value with field separators).
uint64_t TripleHash(const core::Triple& triple);

/// Linear-interpolated quantile from "le" buckets. `counts` has
/// bounds.size() + 1 slots (last = the +inf overflow bucket). Returns 0
/// when total is 0. A quantile that lands in the overflow bucket cannot
/// be interpolated; it is clamped to the last finite bound and, when
/// `saturated` is non-null, *saturated is set to true so callers can
/// tell a real measurement from a clamped underestimate.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& counts, double q,
                           bool* saturated = nullptr);

/// Runs the schedule against a server. `connect` is called once per
/// driver thread (each thread owns one connection); `swap_hook`, when
/// set and options.swap_at >= 0, is invoked exactly once by whichever
/// thread completes request number swap_at. Returns a report whose
/// aggregate counters (requests, triples, checksum) are deterministic
/// for a fixed seed + model, independent of threads and timing.
Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::vector<LoadgenProduct>& products,
    const std::function<Result<Client>()>& connect,
    const std::function<void()>& swap_hook = nullptr);

}  // namespace pae::serve

#endif  // PAE_SERVE_LOADGEN_H_
