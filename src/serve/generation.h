#ifndef PAE_SERVE_GENERATION_H_
#define PAE_SERVE_GENERATION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "core/engine.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pae::serve {

/// Atomic generation pointer over immutable ExtractionEngine snapshots
/// — the hot-swap primitive behind pae-serve, in the spirit of the
/// epoch/publish tricks concurrent hash tables use to retire old
/// buckets.
///
/// Layout: a fixed ring of kSlots slots. Generation g lives in slot
/// g % kSlots; `current_` names the newest published generation.
///
/// Readers (request workers) call Acquire(): load `current_`, bump that
/// slot's reader count, re-check `current_` — two atomic loads and one
/// fetch_add on the fast path, no locks, no shared_ptr refcount ping-
/// pong. The re-check closes the race with a publisher reusing the
/// slot: a reader that lost wins nothing but a retry; it never
/// dereferences a slot it cannot prove current. The returned Lease pins
/// the slot (and therefore the engine) until it is destroyed, so every
/// request is served by exactly one published generation end to end
/// even while swaps happen mid-flight.
///
/// Publishers call Publish(): serialized by a mutex (swaps are rare),
/// write the engine into slot (current_+1) % kSlots, then advance
/// `current_`. Reusing a slot requires its reader count to drain to
/// zero first — that wait IS the drain semantics: a publisher can run
/// up to kSlots-1 generations ahead of the slowest in-flight request
/// before it blocks, and old generations retire exactly when their last
/// lease goes away.
class GenerationCell {
 public:
  static constexpr size_t kSlots = 8;

  GenerationCell() = default;
  GenerationCell(const GenerationCell&) = delete;
  GenerationCell& operator=(const GenerationCell&) = delete;

  /// A pinned snapshot: engine pointer + the generation that served it.
  /// Move-only RAII; empty() when acquired before the first publish.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept
        : readers_(other.readers_),
          engine_(other.engine_),
          generation_(other.generation_) {
      other.readers_ = nullptr;
      other.engine_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        readers_ = other.readers_;
        engine_ = other.engine_;
        generation_ = other.generation_;
        other.readers_ = nullptr;
        other.engine_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool empty() const { return engine_ == nullptr; }
    const core::ExtractionEngine* engine() const { return engine_; }
    uint64_t generation() const { return generation_; }
    /// Explicit early release (idempotent).
    void Release() {
      if (readers_ != nullptr) {
        readers_->fetch_sub(1, std::memory_order_release);
        readers_ = nullptr;
        engine_ = nullptr;
      }
    }

   private:
    friend class GenerationCell;
    Lease(std::atomic<int64_t>* readers,
          const core::ExtractionEngine* engine, uint64_t generation)
        : readers_(readers), engine_(engine), generation_(generation) {}

    std::atomic<int64_t>* readers_ = nullptr;
    const core::ExtractionEngine* engine_ = nullptr;
    uint64_t generation_ = 0;
  };

  /// Pins the newest published generation. Lock-free: retries only when
  /// racing a publisher that advanced past the observed generation.
  ///
  /// Ordering: this is the hazard-pointer shape — announce (fetch_add),
  /// then validate (re-load current_) — and it is only sound under a
  /// single total order: if the publisher's drain load missed our
  /// announcement, our validation load must see the publisher's
  /// current_ advance, or vice versa. Acquire/release alone does not
  /// give that store-load guarantee, so every current_/readers access
  /// here and in Publish is seq_cst (the C++ default; on x86 the
  /// fetch_add is a locked op it needed anyway and the loads are plain
  /// movs, so the fast path costs nothing extra).
  Lease Acquire() const {
    for (;;) {
      const uint64_t gen = current_.load(std::memory_order_seq_cst);
      if (gen == 0) return Lease();
      const Slot& slot = slots_[gen % kSlots];
      slot.readers.fetch_add(1, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == gen) {
        // Slot proven current while pinned: the publisher cannot have
        // reused it (reuse needs kSlots newer generations AND a drained
        // reader count, and ours is > 0).
        return Lease(&slot.readers, slot.engine.get(), gen);
      }
      slot.readers.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Publishes `engine` as the next generation and returns its number
  /// (1-based). Blocks while the slot being reused still has in-flight
  /// leases — requests more than kSlots generations behind gate the
  /// swap rate, never the other way around.
  uint64_t Publish(std::shared_ptr<const core::ExtractionEngine> engine)
      PAE_EXCLUDES(publish_mutex_) {
    PAE_CHECK(engine != nullptr);
    util::MutexLock lock(publish_mutex_);
    const uint64_t next = current_.load(std::memory_order_seq_cst) + 1;
    Slot& slot = slots_[next % kSlots];
    // Drain the slot's previous tenant (generation next - kSlots). The
    // seq_cst load pairs with the reader's announce/validate sequence:
    // any reader this load misses is guaranteed to fail its validation
    // and back off without touching the slot.
    while (slot.readers.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    slot.engine = std::move(engine);
    current_.store(next, std::memory_order_seq_cst);
    return next;
  }

  /// Newest published generation (0 = nothing published yet).
  uint64_t generation() const {
    return current_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    /// Written only by publishers, under publish_mutex_, after the
    /// reader count drained; read by leased readers. The shared_ptr
    /// keeps the engine alive while the slot owns the generation.
    /// Deliberately NOT PAE_GUARDED_BY(publish_mutex_): the read side
    /// is lock-free by design — its safety argument is the
    /// announce/validate protocol above, which the static analysis
    /// cannot express; the hammer test under TSan is its enforcement.
    std::shared_ptr<const core::ExtractionEngine> engine;
    mutable std::atomic<int64_t> readers{0};
  };

  std::atomic<uint64_t> current_{0};
  std::array<Slot, kSlots> slots_;
  util::Mutex publish_mutex_;
};

}  // namespace pae::serve

#endif  // PAE_SERVE_GENERATION_H_
