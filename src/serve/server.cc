#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "serve/protocol.h"
#include "util/logging.h"

namespace pae::serve {

Server::Server(ServerOptions options) : options_(std::move(options)) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  requests_counter_ = metrics.GetCounter("serve.requests");
  errors_counter_ = metrics.GetCounter("serve.protocol_errors");
  connections_counter_ = metrics.GetCounter("serve.connections");
  swaps_counter_ = metrics.GetCounter("serve.hot_swaps");
  request_seconds_ = metrics.GetHistogram("serve.request.seconds",
                                          core::RequestLatencyBounds());
  publish_load_seconds_ = metrics.GetHistogram("serve.publish.load_seconds",
                                               core::RequestLatencyBounds());
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("server already started");
  }
  const bool unix_listener = !options_.unix_path.empty();
  const bool tcp_listener = options_.tcp_port >= 0;
  if (unix_listener == tcp_listener) {
    return Status::InvalidArgument(
        "configure exactly one of unix_path and tcp_port");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }

  Result<Fd> listener =
      unix_listener ? ListenUnix(options_.unix_path)
                    : ListenTcp(options_.tcp_port, &resolved_tcp_port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());

  stopping_.store(false, std::memory_order_seq_cst);
  running_.store(true, std::memory_order_seq_cst);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (unix_listener) {
    PAE_LOG(INFO) << "pae-serve listening on unix:" << options_.unix_path
                  << " with " << options_.workers << " workers";
  } else {
    PAE_LOG(INFO) << "pae-serve listening on tcp:" << resolved_tcp_port_
                  << " with " << options_.workers << " workers";
  }
  return Status::Ok();
}

void Server::RequestStop() {
  {
    util::MutexLock lock(queue_mutex_);
    if (stopping_.exchange(true, std::memory_order_seq_cst)) return;
    // Wake workers parked in read(): half-close every in-flight
    // connection so their next read sees EOF.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  listener_.ShutdownBoth();
  queue_cv_.NotifyAll();
}

void Server::WaitUntilStopRequested() {
  util::MutexLock lock(queue_mutex_);
  while (!stopping_.load(std::memory_order_seq_cst)) {
    queue_cv_.Wait(queue_mutex_);
  }
}

void Server::Stop() {
  if (!running_.load(std::memory_order_seq_cst)) return;
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    util::MutexLock lock(queue_mutex_);
    pending_.clear();  // Fd destructors close unserved connections
  }
  listener_ = Fd();
  running_.store(false, std::memory_order_seq_cst);
  PAE_LOG(INFO) << "pae-serve stopped after "
                << requests_.load(std::memory_order_relaxed)
                << " requests on "
                << connections_.load(std::memory_order_relaxed)
                << " connections ("
                << hot_swaps_.load(std::memory_order_relaxed)
                << " hot swaps, "
                << protocol_errors_.load(std::memory_order_relaxed)
                << " protocol errors)";
}

uint64_t Server::Publish(
    std::shared_ptr<const core::ExtractionEngine> engine) {
  const uint64_t generation = generations_.Publish(std::move(engine));
  if (generation > 1) {
    hot_swaps_.fetch_add(1, std::memory_order_relaxed);
    swaps_counter_->Increment();
  }
  PAE_LOG(INFO) << "pae-serve published generation " << generation;
  return generation;
}

Server::Stats Server::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.hot_swaps = hot_swaps_.load(std::memory_order_relaxed);
  return stats;
}

void Server::AcceptLoop() {
  // Poll with a short timeout so a stop request is noticed even when the
  // listener shutdown races the poll registration.
  constexpr int kAcceptTimeoutMs = 50;
  while (!stopping_.load(std::memory_order_seq_cst)) {
    Result<Fd> accepted = AcceptWithTimeout(listener_, kAcceptTimeoutMs);
    if (!accepted.ok()) {
      if (!stopping_.load(std::memory_order_seq_cst)) {
        PAE_LOG(WARNING) << "accept failed: "
                         << accepted.status().ToString();
      }
      continue;
    }
    if (!accepted.value().valid()) continue;  // poll timeout
    connections_.fetch_add(1, std::memory_order_relaxed);
    connections_counter_->Increment();
    {
      util::MutexLock lock(queue_mutex_);
      pending_.push_back(std::move(accepted.value()));
    }
    queue_cv_.NotifyOne();
  }
}

void Server::WorkerLoop() {
  // One Scratch per worker for its whole lifetime: steady-state request
  // handling reuses these buffers instead of allocating per request.
  std::unique_ptr<core::ExtractionEngine::Scratch> scratch =
      core::ExtractionEngine::NewScratch();
  for (;;) {
    Fd fd;
    {
      util::MutexLock lock(queue_mutex_);
      while (!stopping_.load(std::memory_order_seq_cst) &&
             pending_.empty()) {
        queue_cv_.Wait(queue_mutex_);
      }
      if (stopping_.load(std::memory_order_seq_cst)) return;
      fd = std::move(pending_.front());
      pending_.pop_front();
      active_fds_.push_back(fd.get());
    }
    const int raw_fd = fd.get();
    const bool keep_running = ServeConnection(std::move(fd), scratch.get());
    {
      util::MutexLock lock(queue_mutex_);
      active_fds_.erase(
          std::remove(active_fds_.begin(), active_fds_.end(), raw_fd),
          active_fds_.end());
    }
    if (!keep_running) {
      RequestStop();
      return;
    }
  }
}

bool Server::ServeConnection(Fd fd,
                             core::ExtractionEngine::Scratch* scratch) {
  std::string payload;
  while (!stopping_.load(std::memory_order_seq_cst)) {
    const Status read = ReadFrame(fd, &payload, options_.max_frame_bytes);
    if (!read.ok()) {
      // A clean EOF before the first byte of a frame is the normal end
      // of a connection; anything else (truncated frame, oversize length
      // word) latches this connection's protocol error.
      if (read.code() != StatusCode::kNotFound) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        errors_counter_->Increment();
        PAE_LOG(WARNING) << "closing connection: " << read.ToString();
      }
      return true;
    }

    Result<Request> request = DecodeRequest(payload);
    if (!request.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_counter_->Increment();
      // Best effort: name the opcode the client tried to use (the first
      // payload byte) so it can match the error to its request, then
      // drop the connection — its framing can no longer be trusted.
      const Op op = payload.empty() ? Op::kPing
                                    : static_cast<Op>(payload.front());
      const Status ignored = WriteFrame(
          fd, EncodeErrorResponse(op, request.status()),
          options_.max_frame_bytes);
      (void)ignored;
      return true;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_counter_->Increment();
    std::string response;
    const bool keep_running =
        HandleRequest(request.value(), scratch, &response);
    const Status written =
        WriteFrame(fd, response, options_.max_frame_bytes);
    if (!keep_running) return false;
    if (!written.ok()) return true;  // peer went away mid-response
  }
  return true;
}

bool Server::HandleRequest(const Request& request,
                           core::ExtractionEngine::Scratch* scratch,
                           std::string* response) {
  switch (request.op) {
    case Op::kExtract: {
      GenerationCell::Lease lease = generations_.Acquire();
      if (lease.empty()) {
        *response = EncodeErrorResponse(
            Op::kExtract,
            Status::FailedPrecondition("no model published yet"));
        return true;
      }
      util::ScopedTimer timer(request_seconds_);
      ExtractResponse extract;
      extract.generation = lease.generation();
      extract.triples = lease.engine()->Extract(
          request.extract.product_id, request.extract.html, scratch);
      *response = EncodeExtractResponse(extract);
      return true;
    }
    case Op::kPing: {
      GenerationCell::Lease lease = generations_.Acquire();
      PingResponse ping;
      ping.generation = lease.generation();
      ping.model_name = lease.empty() ? "" : lease.engine()->ModelName();
      *response = EncodePingResponse(ping);
      return true;
    }
    case Op::kStats: {
      StatsResponse stats;
      stats.generation = generations_.generation();
      stats.requests = requests_.load(std::memory_order_relaxed);
      stats.protocol_errors =
          protocol_errors_.load(std::memory_order_relaxed);
      stats.connections = connections_.load(std::memory_order_relaxed);
      stats.hot_swaps = hot_swaps_.load(std::memory_order_relaxed);
      *response = EncodeStatsResponse(stats);
      return true;
    }
    case Op::kPublish: {
      // Timed model-load-to-ready: the latency an operator actually
      // waits for on a hot swap. A `.paez` artifact lands in the
      // microsecond buckets; a legacy parse in the tens of milliseconds.
      Result<std::shared_ptr<const core::ExtractionEngine>> engine = [&] {
        util::ScopedTimer timer(publish_load_seconds_);
        return core::LoadCrfEngine(request.publish.model_path,
                                   request.publish.resources_dir,
                                   options_.publish_engine_options);
      }();
      if (!engine.ok()) {
        *response = EncodeErrorResponse(Op::kPublish, engine.status());
        return true;
      }
      *response =
          EncodePublishResponse(Publish(std::move(engine.value())));
      return true;
    }
    case Op::kShutdown: {
      *response = EncodeShutdownResponse();
      return false;
    }
  }
  *response = EncodeErrorResponse(
      request.op, Status::Internal("unhandled opcode"));
  return true;
}

}  // namespace pae::serve
