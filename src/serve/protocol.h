#ifndef PAE_SERVE_PROTOCOL_H_
#define PAE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace pae::serve {

/// pae-serve wire protocol, version 1.
///
/// Every message is one frame (socket.h): a u32 little-endian payload
/// length, then the payload. Payloads are WireWriter-encoded:
///
///   request  := u8 opcode, body
///   response := u8 (opcode | 0x80), u8 status_code, string message,
///               body-if-ok
///
/// Request bodies:
///   kExtract  string product_id, string html
///   kPing     (empty)
///   kStats    (empty)
///   kPublish  string model_path, string resources_dir
///   kShutdown (empty)
///
/// Ok-response bodies:
///   kExtract  u64 generation, u32 count, count × (string attribute,
///             string value)
///   kPing     u64 generation, string model_name
///   kStats    u64 generation, u64 requests, u64 protocol_errors,
///             u64 connections, u64 hot_swaps
///   kPublish  u64 generation (the newly published one)
///   kShutdown (empty)
///
/// Any decode failure on the server side latches that connection's
/// error state and closes it; other connections are unaffected.
inline constexpr uint8_t kProtocolVersion = 1;

enum class Op : uint8_t {
  kExtract = 0x01,
  kPing = 0x02,
  kStats = 0x03,
  kPublish = 0x04,
  kShutdown = 0x05,
};

/// The response-opcode bit: response opcode = request opcode | 0x80.
inline constexpr uint8_t kResponseBit = 0x80;

struct ExtractRequest {
  std::string product_id;
  std::string html;
};

struct PublishRequest {
  std::string model_path;
  std::string resources_dir;
};

/// A decoded request (tagged by `op`).
struct Request {
  Op op = Op::kPing;
  ExtractRequest extract;   // op == kExtract
  PublishRequest publish;   // op == kPublish
};

struct ExtractResponse {
  uint64_t generation = 0;
  std::vector<core::Triple> triples;  // product_id echoed from the request
};

struct PingResponse {
  uint64_t generation = 0;
  std::string model_name;
};

struct StatsResponse {
  uint64_t generation = 0;
  uint64_t requests = 0;
  uint64_t protocol_errors = 0;
  uint64_t connections = 0;
  uint64_t hot_swaps = 0;
};

// ---- encoding (always succeeds for in-range strings) ----

std::string EncodeExtractRequest(const ExtractRequest& request);
std::string EncodePingRequest();
std::string EncodeStatsRequest();
std::string EncodePublishRequest(const PublishRequest& request);
std::string EncodeShutdownRequest();

/// An error response for `op` carrying `status`.
std::string EncodeErrorResponse(Op op, const Status& status);
/// Triples are sent as (attribute, value) pairs; the product id is
/// implicit (it names the request page) and re-attached by the decoder.
std::string EncodeExtractResponse(const ExtractResponse& response);
std::string EncodePingResponse(const PingResponse& response);
std::string EncodeStatsResponse(const StatsResponse& response);
std::string EncodePublishResponse(uint64_t generation);
std::string EncodeShutdownResponse();

// ---- decoding (never trusts the payload) ----

/// Decodes a request payload. Unknown opcodes, truncated bodies,
/// oversize length words and trailing bytes all fail.
Result<Request> DecodeRequest(const std::string& payload);

/// Splits a response payload into its envelope. Returns the carried
/// Status (Ok or the server's error); `*op` is the request opcode the
/// response answers and `*body_reader_pos` the offset of the body.
Status DecodeResponseEnvelope(const std::string& payload, Op expected_op,
                              size_t* body_pos);

Result<ExtractResponse> DecodeExtractResponse(const std::string& payload,
                                              const std::string& product_id);
Result<PingResponse> DecodePingResponse(const std::string& payload);
Result<StatsResponse> DecodeStatsResponse(const std::string& payload);
Result<uint64_t> DecodePublishResponse(const std::string& payload);
Status DecodeShutdownResponse(const std::string& payload);

}  // namespace pae::serve

#endif  // PAE_SERVE_PROTOCOL_H_
