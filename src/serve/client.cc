#include "serve/client.h"

#include <utility>

namespace pae::serve {

Result<Client> Client::ConnectUnixSocket(const std::string& path) {
  Result<Fd> fd = ConnectUnix(path);
  if (!fd.ok()) return fd.status();
  return Client(std::move(fd.value()));
}

Result<Client> Client::ConnectTcpSocket(const std::string& host, int port) {
  Result<Fd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return Client(std::move(fd.value()));
}

Result<std::string> Client::RoundTrip(const std::string& payload) {
  PAE_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  std::string response;
  PAE_RETURN_IF_ERROR(ReadFrame(fd_, &response));
  return response;
}

Result<ExtractResponse> Client::Extract(std::string_view product_id,
                                        std::string_view html) {
  ExtractRequest request;
  request.product_id = std::string(product_id);
  request.html = std::string(html);
  Result<std::string> response = RoundTrip(EncodeExtractRequest(request));
  if (!response.ok()) return response.status();
  return DecodeExtractResponse(response.value(), request.product_id);
}

Result<PingResponse> Client::Ping() {
  Result<std::string> response = RoundTrip(EncodePingRequest());
  if (!response.ok()) return response.status();
  return DecodePingResponse(response.value());
}

Result<StatsResponse> Client::Stats() {
  Result<std::string> response = RoundTrip(EncodeStatsRequest());
  if (!response.ok()) return response.status();
  return DecodeStatsResponse(response.value());
}

Result<uint64_t> Client::Publish(const std::string& model_path,
                                 const std::string& resources_dir) {
  PublishRequest request;
  request.model_path = model_path;
  request.resources_dir = resources_dir;
  Result<std::string> response = RoundTrip(EncodePublishRequest(request));
  if (!response.ok()) return response.status();
  return DecodePublishResponse(response.value());
}

Status Client::Shutdown() {
  Result<std::string> response = RoundTrip(EncodeShutdownRequest());
  if (!response.ok()) return response.status();
  return DecodeShutdownResponse(response.value());
}

}  // namespace pae::serve
