#include "serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.h"

namespace pae::serve {

namespace {

Status ErrnoStatus(const std::string& what) {
  // ErrnoString, not std::strerror: worker threads report socket
  // errors concurrently, and strerror's static buffer is a data race.
  return Status::Internal(what + ": " + ErrnoString(errno));
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Fd> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a crashed daemon
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind(" + path + ")");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen(" + path + ")");
  }
  return fd;
}

Result<Fd> ListenTcp(int port, int* resolved_port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket(AF_INET)");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind(tcp:" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen(tcp:" + std::to_string(port) + ")");
  }
  if (resolved_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return ErrnoStatus("getsockname");
    }
    *resolved_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<Fd> AcceptWithTimeout(const Fd& listener, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listener.get();
  pfd.events = POLLIN;
  int ready = 0;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return ErrnoStatus("poll(accept)");
  if (ready == 0) return Fd();  // timeout: no pending connection
  int fd = 0;
  do {
    fd = ::accept(listener.get(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus("accept");
  return Fd(fd);
}

Result<Fd> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return ErrnoStatus("connect(" + path + ")");
  }
  return fd;
}

Result<Fd> ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket(AF_INET)");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return ErrnoStatus("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

Status ReadFull(const Fd& fd, void* data, size_t size) {
  char* out = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd.get(), out + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read");
    }
    if (n == 0) {
      if (done == 0) return Status::NotFound("connection closed");
      return Status::OutOfRange("connection closed mid-read after " +
                                std::to_string(done) + " of " +
                                std::to_string(size) + " bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteFull(const Fd& fd, const void* data, size_t size) {
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd.get(), in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadFrame(const Fd& fd, std::string* payload, uint32_t max_bytes) {
  uint32_t length = 0;
  PAE_RETURN_IF_ERROR(ReadFull(fd, &length, sizeof(length)));
  if (length > max_bytes) {
    return Status::OutOfRange("frame length " + std::to_string(length) +
                              " exceeds limit " +
                              std::to_string(max_bytes));
  }
  payload->resize(length);
  if (length == 0) return Status::Ok();
  return ReadFull(fd, payload->data(), length);
}

Status WriteFrame(const Fd& fd, const std::string& payload,
                  uint32_t max_bytes) {
  if (payload.size() > max_bytes) {
    return Status::OutOfRange("refusing to send a frame of " +
                              std::to_string(payload.size()) + " bytes");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  PAE_RETURN_IF_ERROR(WriteFull(fd, &length, sizeof(length)));
  if (length == 0) return Status::Ok();
  return WriteFull(fd, payload.data(), length);
}

}  // namespace pae::serve
