#include "lstm/bilstm_tagger.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "math/kernels.h"
#include "math/vec.h"
#include "text/utf8.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace pae::lstm {

/// One panel of tokens whose char sequences all have length `len`,
/// processed by the char BiLSTM as a batch of `tokens.size()` columns.
struct BiLstmTagger::CharBatch {
  size_t len = 0;
  std::vector<size_t> tokens;  // global token ids (n = s*T + t), ascending
  LstmBatchTrace fwd;          // chars in reading order
  LstmBatchTrace bwd;          // chars reversed
};

/// Forward activations of S equal-length sentences; token n = s*T + t.
struct BiLstmTagger::SentenceBatch {
  size_t S = 0;
  size_t T = 0;
  std::vector<CharBatch> char_batches;
  /// token → (index into char_batches, column in that panel);
  /// first == SIZE_MAX for tokens with no characters.
  std::vector<std::pair<size_t, size_t>> char_loc;
  std::vector<float> word_inputs;  // [T][S][2*char_hidden], post dropout
  LstmBatchTrace word_fwd, word_bwd;
  std::vector<float> repr;    // [S*T][2*word_hidden + word_dim]
  std::vector<float> logits;  // [S*T][L]
};

BiLstmTagger::BiLstmTagger(BiLstmOptions options) : options_(options) {}

std::vector<std::string> BiLstmTagger::TokenChars(const std::string& token) {
  std::vector<std::string> chars;
  size_t pos = 0;
  while (pos < token.size()) {
    size_t start = pos;
    text::NextCodepoint(token, &pos);
    chars.push_back(token.substr(start, pos - start));
  }
  return chars;
}

void BiLstmTagger::RunCharBatches(
    const std::vector<std::vector<int>>& char_ids, SentenceBatch* sb) const {
  const size_t dc = static_cast<size_t>(options_.char_dim);
  const size_t n_tokens = char_ids.size();
  const size_t cap =
      options_.batch_size < 1 ? 1 : static_cast<size_t>(options_.batch_size);

  sb->char_batches.clear();
  sb->char_loc.assign(n_tokens, {SIZE_MAX, 0});

  // Bucket tokens by exact char count (no padding, no masking); the
  // std::map keeps bucket order a pure function of the input lengths.
  std::map<size_t, std::vector<size_t>> by_len;
  for (size_t n = 0; n < n_tokens; ++n) {
    if (!char_ids[n].empty()) by_len[char_ids[n].size()].push_back(n);
  }

  std::vector<float> flat_fwd, flat_bwd;
  for (const auto& [len, toks] : by_len) {
    for (size_t j = 0; j < toks.size(); j += cap) {
      const size_t B = std::min(cap, toks.size() - j);
      CharBatch cb;
      cb.len = len;
      cb.tokens.assign(toks.begin() + static_cast<long>(j),
                       toks.begin() + static_cast<long>(j + B));
      flat_fwd.assign(len * B * dc, 0.0f);
      flat_bwd.assign(len * B * dc, 0.0f);
      for (size_t b = 0; b < B; ++b) {
        const std::vector<int>& ids = char_ids[cb.tokens[b]];
        for (size_t k = 0; k < len; ++k) {
          const float* row = char_emb_.Row(static_cast<size_t>(ids[k]));
          std::copy(row, row + dc, flat_fwd.begin() + ((k * B + b) * dc));
          std::copy(row, row + dc,
                    flat_bwd.begin() + (((len - 1 - k) * B + b) * dc));
        }
      }
      LstmForwardBatch(char_fwd_, flat_fwd.data(), len, B, &cb.fwd);
      LstmForwardBatch(char_bwd_, flat_bwd.data(), len, B, &cb.bwd);
      for (size_t b = 0; b < B; ++b) {
        sb->char_loc[cb.tokens[b]] = {sb->char_batches.size(), b};
      }
      sb->char_batches.push_back(std::move(cb));
    }
  }
}

void BiLstmTagger::ForwardBatch(
    const std::vector<int>& word_ids,
    const std::vector<std::vector<int>>& char_ids,
    const std::vector<std::vector<float>>& dropout_masks, bool training,
    size_t num_sentences, size_t num_tokens, SentenceBatch* sb) const {
  const size_t S = num_sentences;
  const size_t T = num_tokens;
  const size_t hc = static_cast<size_t>(options_.char_hidden);
  const size_t hw = static_cast<size_t>(options_.word_hidden);
  const size_t dw = static_cast<size_t>(options_.word_dim);
  const size_t L = labels_.size();
  const size_t repr_dim = 2 * hw + dw;
  PAE_DCHECK_EQ(word_ids.size(), S * T);
  PAE_DCHECK_EQ(char_ids.size(), S * T);

  // Gate-dimension contract: the char-BiLSTM representation feeding the
  // word LSTMs must match their input width (2*char_hidden), and the
  // output layer must span [h_fwd; h_bwd; word_emb].
  PAE_DCHECK_EQ(word_fwd_.input_dim, 2 * hc);
  PAE_DCHECK_EQ(word_bwd_.input_dim, 2 * hc);
  PAE_DCHECK_EQ(out_w_.cols(), repr_dim);
  PAE_DCHECK_EQ(out_w_.rows(), L);

  sb->S = S;
  sb->T = T;
  RunCharBatches(char_ids, sb);

  // Word-LSTM inputs, time-major [T][S][2hc]: each token's slot is the
  // concatenated final char-BiLSTM hidden states (zeros for char-less
  // tokens), scaled by its inverted-dropout mask during training.
  sb->word_inputs.assign(T * S * 2 * hc, 0.0f);
  for (size_t s = 0; s < S; ++s) {
    for (size_t t = 0; t < T; ++t) {
      const size_t n = s * T + t;
      float* dst = sb->word_inputs.data() + (t * S + s) * 2 * hc;
      const auto [bi, col] = sb->char_loc[n];
      if (bi != SIZE_MAX) {
        const CharBatch& cb = sb->char_batches[bi];
        const float* hf = cb.fwd.H(cb.len - 1) + col * hc;
        const float* hb = cb.bwd.H(cb.len - 1) + col * hc;
        std::copy(hf, hf + hc, dst);
        std::copy(hb, hb + hc, dst + hc);
      }
      if (training) {
        PAE_DCHECK_EQ(dropout_masks[n].size(), 2 * hc);
        for (size_t k = 0; k < 2 * hc; ++k) dst[k] *= dropout_masks[n][k];
      }
    }
  }

  // Word-level BiLSTM: one batched GEMM pair per timestep over all S
  // sentences.
  LstmForwardBatch(word_fwd_, sb->word_inputs.data(), T, S, &sb->word_fwd);
  std::vector<float> reversed(T * S * 2 * hc);
  for (size_t t = 0; t < T; ++t) {
    std::copy(sb->word_inputs.begin() + static_cast<long>((T - 1 - t) * S *
                                                          2 * hc),
              sb->word_inputs.begin() + static_cast<long>((T - t) * S * 2 *
                                                          hc),
              reversed.begin() + static_cast<long>(t * S * 2 * hc));
  }
  LstmForwardBatch(word_bwd_, reversed.data(), T, S, &sb->word_bwd);

  // Output layer: stack every token's [h_fwd; h_bwd; word_emb] repr and
  // produce all S·T logit rows with a single bias-fused GEMM.
  sb->repr.assign(S * T * repr_dim, 0.0f);
  for (size_t s = 0; s < S; ++s) {
    for (size_t t = 0; t < T; ++t) {
      const size_t n = s * T + t;
      float* row = sb->repr.data() + n * repr_dim;
      const float* hf = sb->word_fwd.H(t) + s * hw;
      const float* hb = sb->word_bwd.H(T - 1 - t) + s * hw;
      std::copy(hf, hf + hw, row);
      std::copy(hb, hb + hw, row + hw);
      const float* emb = word_emb_.Row(static_cast<size_t>(word_ids[n]));
      std::copy(emb, emb + dw, row + 2 * hw);
    }
  }
  sb->logits.assign(S * T * L, 0.0f);
  math::kernels::MatMul(out_w_.data().data(), L, repr_dim, sb->repr.data(),
                        S * T, out_b_.data(), sb->logits.data());
}

Status BiLstmTagger::Train(const std::vector<text::LabeledSequence>& data) {
  if (data.empty()) {
    return Status::InvalidArgument("BiLSTM training set is empty");
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer train_timer(metrics.GetHistogram("lstm.train.seconds"));
  metrics.GetCounter("lstm.trainings")->Increment();
  metrics.GetCounter("lstm.train.sentences")
      ->Add(static_cast<int64_t>(data.size()));
  epoch_losses_.clear();
  Rng rng(options_.seed);

  // Vocabularies and label inventory.
  labels_.clear();
  label_ids_.clear();
  labels_.push_back(text::kOutsideLabel);
  label_ids_[text::kOutsideLabel] = 0;
  word_vocab_ = text::Vocab();
  char_vocab_ = text::Vocab();

  std::unordered_map<std::string, int> word_counts;
  for (const auto& seq : data) {
    if (!seq.HasLabels()) {
      return Status::InvalidArgument("BiLSTM training sequence without labels");
    }
    for (const auto& token : seq.tokens) {
      ++word_counts[token];
      word_vocab_.GetOrAdd(token);
      for (const auto& ch : TokenChars(token)) char_vocab_.GetOrAdd(ch);
    }
    for (const auto& label : seq.labels) {
      if (label_ids_.emplace(label, static_cast<int>(labels_.size())).second) {
        labels_.push_back(label);
      }
    }
  }

  const size_t dc = static_cast<size_t>(options_.char_dim);
  const size_t hc = static_cast<size_t>(options_.char_hidden);
  const size_t hw = static_cast<size_t>(options_.word_hidden);
  const size_t dw = static_cast<size_t>(options_.word_dim);
  const size_t L = labels_.size();
  const size_t repr_dim = 2 * hw + dw;

  char_emb_ = math::Matrix(char_vocab_.size(), dc);
  char_emb_.UniformInit(&rng, 0.1f);
  word_emb_ = math::Matrix(word_vocab_.size(), dw);
  word_emb_.UniformInit(&rng, 0.1f);
  char_fwd_ = LstmParams(dc, hc);
  char_bwd_ = LstmParams(dc, hc);
  word_fwd_ = LstmParams(2 * hc, hw);
  word_bwd_ = LstmParams(2 * hc, hw);
  char_fwd_.Init(&rng);
  char_bwd_.Init(&rng);
  word_fwd_.Init(&rng);
  word_bwd_.Init(&rng);
  out_w_ = math::Matrix(L, repr_dim);
  out_w_.XavierInit(&rng);
  out_b_.assign(L, 0.0f);

  // Gradient buffers (reused across sentences).
  LstmParams g_char_fwd(dc, hc), g_char_bwd(dc, hc);
  LstmParams g_word_fwd(2 * hc, hw), g_word_bwd(2 * hc, hw);
  math::Matrix g_out_w(L, repr_dim);
  std::vector<float> g_out_b(L, 0.0f);
  std::unordered_map<int, std::vector<float>> g_word_emb, g_char_emb;

  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const float keep = 1.0f - options_.dropout;
  util::Counter* nonfinite_skips =
      metrics.GetCounter("lstm.train.nonfinite_grad_skips");
  int64_t sgd_step = 0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0;
    size_t epoch_tokens = 0;

    for (size_t si : order) {
      const auto& seq = data[si];
      const size_t T = seq.tokens.size();
      if (T == 0) continue;

      // Encode tokens.
      std::vector<int> word_ids(T);
      std::vector<std::vector<int>> char_ids(T);
      std::vector<int> gold(T);
      for (size_t t = 0; t < T; ++t) {
        int wid = word_vocab_.Lookup(seq.tokens[t]);
        // Stochastic <unk> replacement for singletons.
        auto it = word_counts.find(seq.tokens[t]);
        if (it != word_counts.end() && it->second <= 1 &&
            rng.Bernoulli(options_.unk_replace_prob)) {
          wid = text::Vocab::kUnkId;
        }
        word_ids[t] = wid;
        for (const auto& ch : TokenChars(seq.tokens[t])) {
          char_ids[t].push_back(char_vocab_.Lookup(ch));
        }
        gold[t] = label_ids_.at(seq.labels[t]);
      }

      // Inverted dropout masks on the word-LSTM inputs.
      std::vector<std::vector<float>> masks(T,
                                            std::vector<float>(2 * hc, 0.0f));
      for (auto& mask : masks) {
        for (float& m : mask) {
          m = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
        }
      }

      SentenceBatch sb;
      ForwardBatch(word_ids, char_ids, masks, /*training=*/true,
                   /*num_sentences=*/1, T, &sb);

      // Loss and ∂L/∂logits.
      std::vector<float> dlogits(T * L);
      std::vector<float> p(L);
      for (size_t t = 0; t < T; ++t) {
        p.assign(sb.logits.begin() + static_cast<long>(t * L),
                 sb.logits.begin() + static_cast<long>((t + 1) * L));
        math::SoftmaxInPlace(&p);
        epoch_loss -= std::log(std::max(p[static_cast<size_t>(gold[t])],
                                        1e-12f));
        p[static_cast<size_t>(gold[t])] -= 1.0f;
        std::copy(p.begin(), p.end(), dlogits.begin() + static_cast<long>(
                                          t * L));
      }
      epoch_tokens += T;

      // ---- Backward ----
      g_char_fwd.SetZero();
      g_char_bwd.SetZero();
      g_word_fwd.SetZero();
      g_word_bwd.SetZero();
      g_out_w.SetZero();
      std::fill(g_out_b.begin(), g_out_b.end(), 0.0f);
      g_word_emb.clear();
      g_char_emb.clear();

      // d repr = out_w^T · dlogits for all T tokens in one batched
      // transpose product (per-token results bit-equal to MatTVec).
      std::vector<float> drepr(T * repr_dim, 0.0f);
      math::kernels::MatTVecBatch(out_w_.data().data(), L, repr_dim,
                                  dlogits.data(), T, drepr.data());

      std::vector<float> dh_word_fwd(T * hw, 0.0f);
      std::vector<float> dh_word_bwd(T * hw, 0.0f);

      for (size_t t = 0; t < T; ++t) {
        const float* dl = dlogits.data() + t * L;
        const float* dr = drepr.data() + t * repr_dim;
        // Output layer gradients (shared buffer — keep token order).
        math::kernels::AddOuter(1.0f, dl, sb.repr.data() + t * repr_dim,
                                g_out_w.data().data(), L, repr_dim);
        for (size_t y = 0; y < L; ++y) g_out_b[y] += dl[y];
        // Split d repr: word fwd h, word bwd h, word embedding.
        for (size_t k = 0; k < hw; ++k) dh_word_fwd[t * hw + k] += dr[k];
        for (size_t k = 0; k < hw; ++k) {
          dh_word_bwd[(T - 1 - t) * hw + k] += dr[hw + k];
        }
        auto [emb_it, unused] = g_word_emb.try_emplace(
            word_ids[t], std::vector<float>(dw, 0.0f));
        for (size_t k = 0; k < dw; ++k) {
          emb_it->second[k] += dr[2 * hw + k];
        }
      }

      // Word BiLSTM backward → gradients into the (dropped) inputs.
      std::vector<float> dpre_wf(T * 4 * hw), dpre_wb(T * 4 * hw);
      std::vector<float> dx_fwd(T * 2 * hc), dx_bwd(T * 2 * hc);
      LstmBackwardBatch(word_fwd_, sb.word_fwd, dh_word_fwd.data(),
                        dpre_wf.data(), dx_fwd.data());
      LstmBackwardBatch(word_bwd_, sb.word_bwd, dh_word_bwd.data(),
                        dpre_wb.data(), dx_bwd.data());
      LstmAccumulateGrads(sb.word_fwd, dpre_wf.data(), 0, &g_word_fwd);
      LstmAccumulateGrads(sb.word_bwd, dpre_wb.data(), 0, &g_word_bwd);

      // Gradient into each token's char-BiLSTM output (through dropout).
      std::vector<float> dinput(T * 2 * hc, 0.0f);
      for (size_t t = 0; t < T; ++t) {
        for (size_t k = 0; k < 2 * hc; ++k) {
          dinput[t * 2 * hc + k] =
              (dx_fwd[t * 2 * hc + k] + dx_bwd[(T - 1 - t) * 2 * hc + k]) *
              masks[t][k];
        }
      }

      // Char BiLSTM backward, one batched pass per panel: gradient
      // arrives only at the final hidden state of each direction.
      const size_t n_batches = sb.char_batches.size();
      std::vector<std::vector<float>> dpre_cf(n_batches), dpre_cb(n_batches);
      std::vector<std::vector<float>> dxc_f(n_batches), dxc_b(n_batches);
      std::vector<float> dh_c;
      for (size_t bi = 0; bi < n_batches; ++bi) {
        const CharBatch& cb = sb.char_batches[bi];
        const size_t B = cb.tokens.size();
        dpre_cf[bi].resize(cb.len * B * 4 * hc);
        dpre_cb[bi].resize(cb.len * B * 4 * hc);
        dxc_f[bi].resize(cb.len * B * dc);
        dxc_b[bi].resize(cb.len * B * dc);
        dh_c.assign(cb.len * B * hc, 0.0f);
        for (size_t b = 0; b < B; ++b) {
          const float* din = dinput.data() + cb.tokens[b] * 2 * hc;
          std::copy(din, din + hc,
                    dh_c.begin() + static_cast<long>(((cb.len - 1) * B + b) *
                                                     hc));
        }
        LstmBackwardBatch(char_fwd_, cb.fwd, dh_c.data(), dpre_cf[bi].data(),
                          dxc_f[bi].data());
        dh_c.assign(cb.len * B * hc, 0.0f);
        for (size_t b = 0; b < B; ++b) {
          const float* din = dinput.data() + cb.tokens[b] * 2 * hc + hc;
          std::copy(din, din + hc,
                    dh_c.begin() + static_cast<long>(((cb.len - 1) * B + b) *
                                                     hc));
        }
        LstmBackwardBatch(char_bwd_, cb.bwd, dh_c.data(), dpre_cb[bi].data(),
                          dxc_b[bi].data());
      }

      // Replay parameter/embedding accumulation in canonical token
      // order (ascending t), exactly as the unbatched loop did — float
      // accumulation into shared buffers is order-sensitive, and this
      // keeps training byte-identical for every batch_size.
      for (size_t t = 0; t < T; ++t) {
        const auto [bi, col] = sb.char_loc[t];
        if (bi == SIZE_MAX) continue;  // token without characters
        const CharBatch& cb = sb.char_batches[bi];
        const size_t B = cb.tokens.size();
        const size_t n_chars = cb.len;
        LstmAccumulateGrads(cb.fwd, dpre_cf[bi].data(), col, &g_char_fwd);
        LstmAccumulateGrads(cb.bwd, dpre_cb[bi].data(), col, &g_char_bwd);
        for (size_t k = 0; k < n_chars; ++k) {
          auto [it_f, unused2] = g_char_emb.try_emplace(
              char_ids[t][k], std::vector<float>(dc, 0.0f));
          const float* df = dxc_f[bi].data() + (k * B + col) * dc;
          const float* db =
              dxc_b[bi].data() + ((n_chars - 1 - k) * B + col) * dc;
          for (size_t d = 0; d < dc; ++d) {
            // Forward direction saw char k at step k; backward at
            // step n-1-k.
            it_f->second[d] += df[d] + db[d];
          }
        }
      }

      // Test hook: deterministically fake the NaN-gradient failure the
      // clipping guard must catch.
      if (options_.inject_nonfinite_grad_at >= 0 &&
          sgd_step == options_.inject_nonfinite_grad_at) {
        g_out_b[0] = std::numeric_limits<float>::quiet_NaN();
      }
      ++sgd_step;

      // Global-norm gradient clipping.
      double sq = g_char_fwd.SquaredNorm() + g_char_bwd.SquaredNorm() +
                  g_word_fwd.SquaredNorm() + g_word_bwd.SquaredNorm();
      sq += math::kernels::SumSq(g_out_w.data().data(), g_out_w.data().size());
      sq += math::kernels::SumSq(g_out_b.data(), g_out_b.size());
      for (const auto& [id, g] : g_word_emb) {
        sq += math::kernels::SumSq(g.data(), g.size());
      }
      for (const auto& [id, g] : g_char_emb) {
        sq += math::kernels::SumSq(g.data(), g.size());
      }
      double norm = std::sqrt(sq);
      // A non-finite norm would sail through the `norm > clip_norm`
      // comparison (NaN compares false), apply the poisoned gradients
      // at full scale, and destroy the model. Skip the step instead and
      // leave an auditable trace in the metrics.
      if (!std::isfinite(norm)) {
        nonfinite_skips->Increment();
        continue;
      }
      float scale = 1.0f;
      if (norm > options_.clip_norm && norm > 0) {
        scale = static_cast<float>(options_.clip_norm / norm);
      }
      const float step = -options_.learning_rate * scale;

      char_fwd_.AddScaled(step, g_char_fwd);
      char_bwd_.AddScaled(step, g_char_bwd);
      word_fwd_.AddScaled(step, g_word_fwd);
      word_bwd_.AddScaled(step, g_word_bwd);
      out_w_.AddScaled(step, g_out_w);
      math::kernels::Axpy(step, g_out_b.data(), out_b_.data(), L);
      for (const auto& [id, g] : g_word_emb) {
        math::kernels::Axpy(step, g.data(),
                            word_emb_.Row(static_cast<size_t>(id)), dw);
      }
      for (const auto& [id, g] : g_char_emb) {
        math::kernels::Axpy(step, g.data(),
                            char_emb_.Row(static_cast<size_t>(id)), dc);
      }
    }
    final_epoch_loss_ =
        epoch_tokens > 0 ? epoch_loss / static_cast<double>(epoch_tokens) : 0;
    PAE_DCHECK_FINITE(final_epoch_loss_);
    epoch_losses_.push_back(final_epoch_loss_);
  }
  metrics.GetSeries("lstm.epoch_loss")->Extend(epoch_losses_);
  trained_ = true;
  return Status::Ok();
}

std::vector<std::string> BiLstmTagger::Predict(
    const text::LabeledSequence& seq) const {
  return PredictScored(seq).labels;
}

text::SequenceTagger::ScoredPrediction BiLstmTagger::PredictScored(
    const text::LabeledSequence& seq) const {
  return PredictScoredBatch({seq})[0];
}

std::vector<text::SequenceTagger::ScoredPrediction>
BiLstmTagger::PredictScoredBatch(
    const std::vector<text::LabeledSequence>& seqs,
    util::ThreadPool* pool) const {
  const size_t L = labels_.size();
  std::vector<ScoredPrediction> out(seqs.size());

  // Group decodable sentences by exact token count; each group is cut
  // into panels of ≤ batch_size sentences that share one forward pass.
  std::map<size_t, std::vector<size_t>> by_len;
  for (size_t i = 0; i < seqs.size(); ++i) {
    const size_t T = seqs[i].tokens.size();
    if (!trained_ || T == 0) {
      out[i].labels.assign(T, text::kOutsideLabel);
      out[i].confidence.assign(T, 1.0);
    } else {
      by_len[T].push_back(i);
    }
  }

  struct Panel {
    size_t T = 0;
    std::vector<size_t> seq_ids;
  };
  std::vector<Panel> panels;
  const size_t cap =
      options_.batch_size < 1 ? 1 : static_cast<size_t>(options_.batch_size);
  for (const auto& [T, ids] : by_len) {
    for (size_t j = 0; j < ids.size(); j += cap) {
      Panel panel;
      panel.T = T;
      panel.seq_ids.assign(
          ids.begin() + static_cast<long>(j),
          ids.begin() + static_cast<long>(std::min(j + cap, ids.size())));
      panels.push_back(std::move(panel));
    }
  }

  // Each panel writes only its own sentences' output slots, so panels
  // are independent: results are byte-identical for any thread count.
  auto run_panel = [&](size_t pi) {
    const Panel& panel = panels[pi];
    const size_t S = panel.seq_ids.size();
    const size_t T = panel.T;
    std::vector<int> word_ids(S * T);
    std::vector<std::vector<int>> char_ids(S * T);
    for (size_t s = 0; s < S; ++s) {
      const auto& seq = seqs[panel.seq_ids[s]];
      for (size_t t = 0; t < T; ++t) {
        word_ids[s * T + t] = word_vocab_.Lookup(seq.tokens[t]);
        for (const auto& ch : TokenChars(seq.tokens[t])) {
          char_ids[s * T + t].push_back(char_vocab_.Lookup(ch));
        }
      }
    }
    SentenceBatch sb;
    ForwardBatch(word_ids, char_ids, {}, /*training=*/false, S, T, &sb);
    for (size_t s = 0; s < S; ++s) {
      ScoredPrediction& pred = out[panel.seq_ids[s]];
      pred.labels.resize(T);
      pred.confidence.resize(T);
      std::vector<float> probs(L);
      for (size_t t = 0; t < T; ++t) {
        const size_t n = s * T + t;
        probs.assign(sb.logits.begin() + static_cast<long>(n * L),
                     sb.logits.begin() + static_cast<long>((n + 1) * L));
        math::SoftmaxInPlace(&probs);
        size_t best = 0;
        for (size_t y = 1; y < L; ++y) {
          if (probs[y] > probs[best]) best = y;
        }
        pred.labels[t] = labels_[best];
        pred.confidence[t] = probs[best];
      }
    }
  };
  if (pool != nullptr && panels.size() > 1) {
    pool->ParallelFor(0, panels.size(), /*grain=*/1, run_panel);
  } else {
    for (size_t pi = 0; pi < panels.size(); ++pi) run_panel(pi);
  }
  return out;
}

}  // namespace pae::lstm

namespace pae::lstm {

namespace {
constexpr uint32_t kLstmMagic = 0x4C53544D;  // "LSTM"
constexpr uint32_t kLstmVersion = 1;

void WriteMatrix(BinaryWriter* writer, const math::Matrix& m) {
  writer->WriteU32(static_cast<uint32_t>(m.rows()));
  writer->WriteU32(static_cast<uint32_t>(m.cols()));
  writer->WriteFloatVec(m.data());
}

bool ReadMatrix(BinaryReader* reader, math::Matrix* m) {
  uint32_t rows = 0, cols = 0;
  std::vector<float> data;
  if (!reader->ReadU32(&rows) || !reader->ReadU32(&cols) ||
      !reader->ReadFloatVec(&data)) {
    return false;
  }
  if (data.size() != static_cast<size_t>(rows) * cols) return false;
  *m = math::Matrix(rows, cols);
  m->data() = std::move(data);
  return true;
}

void WriteLstmParams(BinaryWriter* writer, const LstmParams& p) {
  writer->WriteU32(static_cast<uint32_t>(p.input_dim));
  writer->WriteU32(static_cast<uint32_t>(p.hidden_dim));
  WriteMatrix(writer, p.wx);
  WriteMatrix(writer, p.wh);
  writer->WriteFloatVec(p.b);
}

bool ReadLstmParams(BinaryReader* reader, LstmParams* p) {
  uint32_t input = 0, hidden = 0;
  if (!reader->ReadU32(&input) || !reader->ReadU32(&hidden)) return false;
  *p = LstmParams(input, hidden);
  return ReadMatrix(reader, &p->wx) && ReadMatrix(reader, &p->wh) &&
         reader->ReadFloatVec(&p->b);
}

void WriteVocab(BinaryWriter* writer, const text::Vocab& vocab) {
  std::vector<std::string> words;
  words.reserve(vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    words.emplace_back(vocab.Word(static_cast<int32_t>(i)));
  }
  writer->WriteStringVec(words);
}

bool ReadVocab(BinaryReader* reader, text::Vocab* vocab) {
  std::vector<std::string> words;
  if (!reader->ReadStringVec(&words)) return false;
  *vocab = text::Vocab();  // already contains <unk> at id 0
  vocab->Reserve(words.size() + 1);
  for (const std::string& word : words) vocab->GetOrAdd(word);
  return true;
}

}  // namespace

Status BiLstmTagger::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("BiLSTM: saving an untrained model");
  }
  BinaryWriter writer(path, kLstmMagic, kLstmVersion);
  writer.WriteI32(options_.char_dim);
  writer.WriteI32(options_.char_hidden);
  writer.WriteI32(options_.word_dim);
  writer.WriteI32(options_.word_hidden);
  writer.WriteStringVec(labels_);
  WriteVocab(&writer, word_vocab_);
  WriteVocab(&writer, char_vocab_);
  WriteMatrix(&writer, char_emb_);
  WriteMatrix(&writer, word_emb_);
  WriteLstmParams(&writer, char_fwd_);
  WriteLstmParams(&writer, char_bwd_);
  WriteLstmParams(&writer, word_fwd_);
  WriteLstmParams(&writer, word_bwd_);
  WriteMatrix(&writer, out_w_);
  writer.WriteFloatVec(out_b_);
  return writer.Finish();
}

Status BiLstmTagger::Load(const std::string& path) {
  BinaryReader reader(path, kLstmMagic, kLstmVersion);
  if (!reader.ok()) return reader.status();
  int32_t char_dim = 0, char_hidden = 0, word_dim = 0, word_hidden = 0;
  if (!reader.ReadI32(&char_dim) || !reader.ReadI32(&char_hidden) ||
      !reader.ReadI32(&word_dim) || !reader.ReadI32(&word_hidden) ||
      !reader.ReadStringVec(&labels_) || !ReadVocab(&reader, &word_vocab_) ||
      !ReadVocab(&reader, &char_vocab_) ||
      !ReadMatrix(&reader, &char_emb_) || !ReadMatrix(&reader, &word_emb_) ||
      !ReadLstmParams(&reader, &char_fwd_) ||
      !ReadLstmParams(&reader, &char_bwd_) ||
      !ReadLstmParams(&reader, &word_fwd_) ||
      !ReadLstmParams(&reader, &word_bwd_) ||
      !ReadMatrix(&reader, &out_w_) || !reader.ReadFloatVec(&out_b_)) {
    return reader.status().ok()
               ? Status::Internal("BiLSTM: malformed model file")
               : reader.status();
  }
  options_.char_dim = char_dim;
  options_.char_hidden = char_hidden;
  options_.word_dim = word_dim;
  options_.word_hidden = word_hidden;
  label_ids_.clear();
  for (size_t i = 0; i < labels_.size(); ++i) {
    label_ids_[labels_[i]] = static_cast<int>(i);
  }
  trained_ = true;
  return Status::Ok();
}

}  // namespace pae::lstm
