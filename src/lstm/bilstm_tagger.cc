#include "lstm/bilstm_tagger.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "math/vec.h"
#include "text/utf8.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serial.h"

namespace pae::lstm {

struct BiLstmTagger::TokenTrace {
  LstmTrace char_fwd;
  LstmTrace char_bwd;
  std::vector<int> char_ids;
  std::vector<float> repr_full;  // [h_word_fwd; h_word_bwd; word_emb]
};

BiLstmTagger::BiLstmTagger(BiLstmOptions options) : options_(options) {}

std::vector<std::string> BiLstmTagger::TokenChars(const std::string& token) {
  std::vector<std::string> chars;
  size_t pos = 0;
  while (pos < token.size()) {
    size_t start = pos;
    text::NextCodepoint(token, &pos);
    chars.push_back(token.substr(start, pos - start));
  }
  return chars;
}

void BiLstmTagger::CharRepr(const std::vector<int>& char_ids,
                            LstmTrace* fwd_trace, LstmTrace* bwd_trace,
                            std::vector<float>* repr) const {
  const size_t dc = static_cast<size_t>(options_.char_dim);
  const size_t hc = static_cast<size_t>(options_.char_hidden);
  std::vector<std::vector<float>> inputs(char_ids.size());
  for (size_t k = 0; k < char_ids.size(); ++k) {
    const float* row = char_emb_.Row(static_cast<size_t>(char_ids[k]));
    inputs[k].assign(row, row + dc);
  }
  LstmForward(char_fwd_, inputs, fwd_trace);
  std::reverse(inputs.begin(), inputs.end());
  LstmForward(char_bwd_, inputs, bwd_trace);

  repr->assign(2 * hc, 0.0f);
  if (!char_ids.empty()) {
    const auto& hf = fwd_trace->h.back();
    const auto& hb = bwd_trace->h.back();
    std::copy(hf.begin(), hf.end(), repr->begin());
    std::copy(hb.begin(), hb.end(), repr->begin() + static_cast<long>(hc));
  }
}

void BiLstmTagger::Forward(
    const std::vector<int>& word_ids,
    const std::vector<std::vector<int>>& char_ids,
    const std::vector<std::vector<float>>& dropout_masks, bool training,
    std::vector<std::vector<float>>* logits, std::vector<TokenTrace>* traces,
    std::vector<LstmTrace>* word_fwd_trace,
    std::vector<LstmTrace>* word_bwd_trace,
    std::vector<std::vector<float>>* word_inputs) const {
  const size_t T = word_ids.size();
  const size_t hc = static_cast<size_t>(options_.char_hidden);
  const size_t hw = static_cast<size_t>(options_.word_hidden);
  const size_t dw = static_cast<size_t>(options_.word_dim);
  const size_t L = labels_.size();

  if (traces != nullptr) traces->resize(T);
  word_inputs->assign(T, {});

  std::vector<TokenTrace> local_traces;
  if (traces == nullptr) local_traces.resize(T);
  std::vector<TokenTrace>& tt = (traces != nullptr) ? *traces : local_traces;

  for (size_t t = 0; t < T; ++t) {
    tt[t].char_ids = char_ids[t];
    std::vector<float> repr;
    CharRepr(char_ids[t], &tt[t].char_fwd, &tt[t].char_bwd, &repr);
    if (training) {
      PAE_DCHECK_EQ(dropout_masks[t].size(), repr.size());
      for (size_t k = 0; k < repr.size(); ++k) repr[k] *= dropout_masks[t][k];
    }
    (*word_inputs)[t] = std::move(repr);
  }

  // Gate-dimension contract: the char-BiLSTM representation feeding the
  // word LSTMs must match their input width (2*char_hidden), and the
  // output layer must span [h_fwd; h_bwd; word_emb].
  PAE_DCHECK_EQ(word_fwd_.input_dim, 2 * hc);
  PAE_DCHECK_EQ(word_bwd_.input_dim, 2 * hc);
  PAE_DCHECK_EQ(out_w_.cols(), 2 * hw + dw);
  PAE_DCHECK_EQ(out_w_.rows(), L);

  // Word-level BiLSTM.
  word_fwd_trace->resize(1);
  word_bwd_trace->resize(1);
  LstmForward(word_fwd_, *word_inputs, &(*word_fwd_trace)[0]);
  std::vector<std::vector<float>> reversed(word_inputs->rbegin(),
                                           word_inputs->rend());
  LstmForward(word_bwd_, reversed, &(*word_bwd_trace)[0]);

  logits->assign(T, std::vector<float>(L, 0.0f));
  for (size_t t = 0; t < T; ++t) {
    std::vector<float>& repr_full = tt[t].repr_full;
    repr_full.assign(2 * hw + dw, 0.0f);
    const auto& hf = (*word_fwd_trace)[0].h[t];
    const auto& hb = (*word_bwd_trace)[0].h[T - 1 - t];
    std::copy(hf.begin(), hf.end(), repr_full.begin());
    std::copy(hb.begin(), hb.end(), repr_full.begin() + static_cast<long>(hw));
    const float* emb = word_emb_.Row(static_cast<size_t>(word_ids[t]));
    std::copy(emb, emb + dw, repr_full.begin() + static_cast<long>(2 * hw));

    std::vector<float>& out = (*logits)[t];
    for (size_t y = 0; y < L; ++y) {
      out[y] = static_cast<float>(
          out_b_[y] + math::kernels::Dot(out_w_.Row(y), repr_full.data(),
                                         repr_full.size()));
    }
  }
}

Status BiLstmTagger::Train(const std::vector<text::LabeledSequence>& data) {
  if (data.empty()) {
    return Status::InvalidArgument("BiLSTM training set is empty");
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer train_timer(metrics.GetHistogram("lstm.train.seconds"));
  metrics.GetCounter("lstm.trainings")->Increment();
  metrics.GetCounter("lstm.train.sentences")
      ->Add(static_cast<int64_t>(data.size()));
  epoch_losses_.clear();
  Rng rng(options_.seed);

  // Vocabularies and label inventory.
  labels_.clear();
  label_ids_.clear();
  labels_.push_back(text::kOutsideLabel);
  label_ids_[text::kOutsideLabel] = 0;
  word_vocab_ = text::Vocab();
  char_vocab_ = text::Vocab();

  std::unordered_map<std::string, int> word_counts;
  for (const auto& seq : data) {
    if (!seq.HasLabels()) {
      return Status::InvalidArgument("BiLSTM training sequence without labels");
    }
    for (const auto& token : seq.tokens) {
      ++word_counts[token];
      word_vocab_.GetOrAdd(token);
      for (const auto& ch : TokenChars(token)) char_vocab_.GetOrAdd(ch);
    }
    for (const auto& label : seq.labels) {
      if (label_ids_.emplace(label, static_cast<int>(labels_.size())).second) {
        labels_.push_back(label);
      }
    }
  }

  const size_t dc = static_cast<size_t>(options_.char_dim);
  const size_t hc = static_cast<size_t>(options_.char_hidden);
  const size_t hw = static_cast<size_t>(options_.word_hidden);
  const size_t dw = static_cast<size_t>(options_.word_dim);
  const size_t L = labels_.size();
  const size_t repr_dim = 2 * hw + dw;

  char_emb_ = math::Matrix(char_vocab_.size(), dc);
  char_emb_.UniformInit(&rng, 0.1f);
  word_emb_ = math::Matrix(word_vocab_.size(), dw);
  word_emb_.UniformInit(&rng, 0.1f);
  char_fwd_ = LstmParams(dc, hc);
  char_bwd_ = LstmParams(dc, hc);
  word_fwd_ = LstmParams(2 * hc, hw);
  word_bwd_ = LstmParams(2 * hc, hw);
  char_fwd_.Init(&rng);
  char_bwd_.Init(&rng);
  word_fwd_.Init(&rng);
  word_bwd_.Init(&rng);
  out_w_ = math::Matrix(L, repr_dim);
  out_w_.XavierInit(&rng);
  out_b_.assign(L, 0.0f);

  // Gradient buffers (reused across sentences).
  LstmParams g_char_fwd(dc, hc), g_char_bwd(dc, hc);
  LstmParams g_word_fwd(2 * hc, hw), g_word_bwd(2 * hc, hw);
  math::Matrix g_out_w(L, repr_dim);
  std::vector<float> g_out_b(L, 0.0f);
  std::unordered_map<int, std::vector<float>> g_word_emb, g_char_emb;

  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const float keep = 1.0f - options_.dropout;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0;
    size_t epoch_tokens = 0;

    for (size_t si : order) {
      const auto& seq = data[si];
      const size_t T = seq.tokens.size();
      if (T == 0) continue;

      // Encode tokens.
      std::vector<int> word_ids(T);
      std::vector<std::vector<int>> char_ids(T);
      std::vector<int> gold(T);
      for (size_t t = 0; t < T; ++t) {
        int wid = word_vocab_.Lookup(seq.tokens[t]);
        // Stochastic <unk> replacement for singletons.
        auto it = word_counts.find(seq.tokens[t]);
        if (it != word_counts.end() && it->second <= 1 &&
            rng.Bernoulli(options_.unk_replace_prob)) {
          wid = text::Vocab::kUnkId;
        }
        word_ids[t] = wid;
        for (const auto& ch : TokenChars(seq.tokens[t])) {
          char_ids[t].push_back(char_vocab_.Lookup(ch));
        }
        gold[t] = label_ids_.at(seq.labels[t]);
      }

      // Inverted dropout masks on the word-LSTM inputs.
      std::vector<std::vector<float>> masks(T,
                                            std::vector<float>(2 * hc, 0.0f));
      for (auto& mask : masks) {
        for (float& m : mask) {
          m = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
        }
      }

      std::vector<std::vector<float>> logits;
      std::vector<TokenTrace> traces;
      std::vector<LstmTrace> word_fwd_trace, word_bwd_trace;
      std::vector<std::vector<float>> word_inputs;
      Forward(word_ids, char_ids, masks, /*training=*/true, &logits, &traces,
              &word_fwd_trace, &word_bwd_trace, &word_inputs);

      // Loss and ∂L/∂logits.
      std::vector<std::vector<float>> dlogits(T);
      for (size_t t = 0; t < T; ++t) {
        std::vector<float> p = logits[t];
        math::SoftmaxInPlace(&p);
        epoch_loss -= std::log(std::max(p[static_cast<size_t>(gold[t])],
                                        1e-12f));
        p[static_cast<size_t>(gold[t])] -= 1.0f;
        dlogits[t] = std::move(p);
      }
      epoch_tokens += T;

      // ---- Backward ----
      g_char_fwd.SetZero();
      g_char_bwd.SetZero();
      g_word_fwd.SetZero();
      g_word_bwd.SetZero();
      g_out_w.SetZero();
      std::fill(g_out_b.begin(), g_out_b.end(), 0.0f);
      g_word_emb.clear();
      g_char_emb.clear();

      std::vector<std::vector<float>> dh_word_fwd(
          T, std::vector<float>(hw, 0.0f));
      std::vector<std::vector<float>> dh_word_bwd(
          T, std::vector<float>(hw, 0.0f));

      for (size_t t = 0; t < T; ++t) {
        const auto& repr_full = traces[t].repr_full;
        const auto& dl = dlogits[t];
        // Output layer gradients.
        g_out_w.AddOuter(1.0f, dl, repr_full);
        for (size_t y = 0; y < L; ++y) g_out_b[y] += dl[y];
        // d repr_full = out_w^T * dlogits.
        std::vector<float> drepr(repr_dim, 0.0f);
        out_w_.MatTVec(dl, &drepr);
        // Split: word fwd h, word bwd h, word embedding.
        for (size_t k = 0; k < hw; ++k) dh_word_fwd[t][k] += drepr[k];
        for (size_t k = 0; k < hw; ++k) {
          dh_word_bwd[T - 1 - t][k] += drepr[hw + k];
        }
        auto [emb_it, unused] = g_word_emb.try_emplace(
            word_ids[t], std::vector<float>(dw, 0.0f));
        for (size_t k = 0; k < dw; ++k) {
          emb_it->second[k] += drepr[2 * hw + k];
        }
      }

      // Word BiLSTM backward → gradients into the (dropped) inputs.
      std::vector<std::vector<float>> dx_fwd, dx_bwd;
      LstmBackward(word_fwd_, word_fwd_trace[0], dh_word_fwd, &g_word_fwd,
                   &dx_fwd);
      LstmBackward(word_bwd_, word_bwd_trace[0], dh_word_bwd, &g_word_bwd,
                   &dx_bwd);

      for (size_t t = 0; t < T; ++t) {
        std::vector<float> dinput(2 * hc, 0.0f);
        for (size_t k = 0; k < 2 * hc; ++k) {
          dinput[k] = dx_fwd[t][k] + dx_bwd[T - 1 - t][k];
          dinput[k] *= masks[t][k];  // through the dropout
        }
        // Char BiLSTM backward: gradient arrives only at the final
        // hidden state of each direction.
        const size_t n_chars = traces[t].char_ids.size();
        if (n_chars == 0) continue;
        std::vector<std::vector<float>> dh_cf(n_chars,
                                              std::vector<float>(hc, 0.0f));
        std::vector<std::vector<float>> dh_cb(n_chars,
                                              std::vector<float>(hc, 0.0f));
        for (size_t k = 0; k < hc; ++k) {
          dh_cf[n_chars - 1][k] = dinput[k];
          dh_cb[n_chars - 1][k] = dinput[hc + k];
        }
        std::vector<std::vector<float>> dxc_f, dxc_b;
        LstmBackward(char_fwd_, traces[t].char_fwd, dh_cf, &g_char_fwd,
                     &dxc_f);
        LstmBackward(char_bwd_, traces[t].char_bwd, dh_cb, &g_char_bwd,
                     &dxc_b);
        for (size_t k = 0; k < n_chars; ++k) {
          auto [it_f, unused2] = g_char_emb.try_emplace(
              traces[t].char_ids[k], std::vector<float>(dc, 0.0f));
          for (size_t d = 0; d < dc; ++d) {
            // Forward direction saw char k at step k; backward at
            // step n-1-k.
            it_f->second[d] += dxc_f[k][d] + dxc_b[n_chars - 1 - k][d];
          }
        }
      }

      // Global-norm gradient clipping.
      double sq = g_char_fwd.SquaredNorm() + g_char_bwd.SquaredNorm() +
                  g_word_fwd.SquaredNorm() + g_word_bwd.SquaredNorm();
      sq += math::kernels::SumSq(g_out_w.data().data(), g_out_w.data().size());
      sq += math::kernels::SumSq(g_out_b.data(), g_out_b.size());
      for (const auto& [id, g] : g_word_emb) {
        sq += math::kernels::SumSq(g.data(), g.size());
      }
      for (const auto& [id, g] : g_char_emb) {
        sq += math::kernels::SumSq(g.data(), g.size());
      }
      double norm = std::sqrt(sq);
      // A non-finite gradient norm means clipping silently rescales to
      // NaN and the next SGD step destroys the model.
      PAE_DCHECK_FINITE(norm) << "BiLSTM: non-finite gradient norm";
      float scale = 1.0f;
      if (norm > options_.clip_norm && norm > 0) {
        scale = static_cast<float>(options_.clip_norm / norm);
      }
      const float step = -options_.learning_rate * scale;

      char_fwd_.AddScaled(step, g_char_fwd);
      char_bwd_.AddScaled(step, g_char_bwd);
      word_fwd_.AddScaled(step, g_word_fwd);
      word_bwd_.AddScaled(step, g_word_bwd);
      out_w_.AddScaled(step, g_out_w);
      math::kernels::Axpy(step, g_out_b.data(), out_b_.data(), L);
      for (const auto& [id, g] : g_word_emb) {
        math::kernels::Axpy(step, g.data(),
                            word_emb_.Row(static_cast<size_t>(id)), dw);
      }
      for (const auto& [id, g] : g_char_emb) {
        math::kernels::Axpy(step, g.data(),
                            char_emb_.Row(static_cast<size_t>(id)), dc);
      }
    }
    final_epoch_loss_ =
        epoch_tokens > 0 ? epoch_loss / static_cast<double>(epoch_tokens) : 0;
    PAE_DCHECK_FINITE(final_epoch_loss_);
    epoch_losses_.push_back(final_epoch_loss_);
  }
  metrics.GetSeries("lstm.epoch_loss")->Extend(epoch_losses_);
  trained_ = true;
  return Status::Ok();
}

std::vector<std::string> BiLstmTagger::Predict(
    const text::LabeledSequence& seq) const {
  return PredictScored(seq).labels;
}

text::SequenceTagger::ScoredPrediction BiLstmTagger::PredictScored(
    const text::LabeledSequence& seq) const {
  const size_t T = seq.tokens.size();
  ScoredPrediction out;
  if (!trained_ || T == 0) {
    out.labels.assign(T, text::kOutsideLabel);
    out.confidence.assign(T, 1.0);
    return out;
  }
  std::vector<int> word_ids(T);
  std::vector<std::vector<int>> char_ids(T);
  for (size_t t = 0; t < T; ++t) {
    word_ids[t] = word_vocab_.Lookup(seq.tokens[t]);
    for (const auto& ch : TokenChars(seq.tokens[t])) {
      char_ids[t].push_back(char_vocab_.Lookup(ch));
    }
  }
  std::vector<std::vector<float>> logits;
  std::vector<LstmTrace> word_fwd_trace, word_bwd_trace;
  std::vector<std::vector<float>> word_inputs;
  Forward(word_ids, char_ids, {}, /*training=*/false, &logits, nullptr,
          &word_fwd_trace, &word_bwd_trace, &word_inputs);

  out.labels.resize(T);
  out.confidence.resize(T);
  for (size_t t = 0; t < T; ++t) {
    std::vector<float> probs = logits[t];
    math::SoftmaxInPlace(&probs);
    size_t best = 0;
    for (size_t y = 1; y < labels_.size(); ++y) {
      if (probs[y] > probs[best]) best = y;
    }
    out.labels[t] = labels_[best];
    out.confidence[t] = probs[best];
  }
  return out;
}

}  // namespace pae::lstm

namespace pae::lstm {

namespace {
constexpr uint32_t kLstmMagic = 0x4C53544D;  // "LSTM"
constexpr uint32_t kLstmVersion = 1;

void WriteMatrix(BinaryWriter* writer, const math::Matrix& m) {
  writer->WriteU32(static_cast<uint32_t>(m.rows()));
  writer->WriteU32(static_cast<uint32_t>(m.cols()));
  writer->WriteFloatVec(m.data());
}

bool ReadMatrix(BinaryReader* reader, math::Matrix* m) {
  uint32_t rows = 0, cols = 0;
  std::vector<float> data;
  if (!reader->ReadU32(&rows) || !reader->ReadU32(&cols) ||
      !reader->ReadFloatVec(&data)) {
    return false;
  }
  if (data.size() != static_cast<size_t>(rows) * cols) return false;
  *m = math::Matrix(rows, cols);
  m->data() = std::move(data);
  return true;
}

void WriteLstmParams(BinaryWriter* writer, const LstmParams& p) {
  writer->WriteU32(static_cast<uint32_t>(p.input_dim));
  writer->WriteU32(static_cast<uint32_t>(p.hidden_dim));
  WriteMatrix(writer, p.wx);
  WriteMatrix(writer, p.wh);
  writer->WriteFloatVec(p.b);
}

bool ReadLstmParams(BinaryReader* reader, LstmParams* p) {
  uint32_t input = 0, hidden = 0;
  if (!reader->ReadU32(&input) || !reader->ReadU32(&hidden)) return false;
  *p = LstmParams(input, hidden);
  return ReadMatrix(reader, &p->wx) && ReadMatrix(reader, &p->wh) &&
         reader->ReadFloatVec(&p->b);
}

void WriteVocab(BinaryWriter* writer, const text::Vocab& vocab) {
  std::vector<std::string> words;
  words.reserve(vocab.size());
  for (size_t i = 0; i < vocab.size(); ++i) {
    words.emplace_back(vocab.Word(static_cast<int32_t>(i)));
  }
  writer->WriteStringVec(words);
}

bool ReadVocab(BinaryReader* reader, text::Vocab* vocab) {
  std::vector<std::string> words;
  if (!reader->ReadStringVec(&words)) return false;
  *vocab = text::Vocab();  // already contains <unk> at id 0
  for (const std::string& word : words) vocab->GetOrAdd(word);
  return true;
}

}  // namespace

Status BiLstmTagger::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("BiLSTM: saving an untrained model");
  }
  BinaryWriter writer(path, kLstmMagic, kLstmVersion);
  writer.WriteI32(options_.char_dim);
  writer.WriteI32(options_.char_hidden);
  writer.WriteI32(options_.word_dim);
  writer.WriteI32(options_.word_hidden);
  writer.WriteStringVec(labels_);
  WriteVocab(&writer, word_vocab_);
  WriteVocab(&writer, char_vocab_);
  WriteMatrix(&writer, char_emb_);
  WriteMatrix(&writer, word_emb_);
  WriteLstmParams(&writer, char_fwd_);
  WriteLstmParams(&writer, char_bwd_);
  WriteLstmParams(&writer, word_fwd_);
  WriteLstmParams(&writer, word_bwd_);
  WriteMatrix(&writer, out_w_);
  writer.WriteFloatVec(out_b_);
  return writer.Finish();
}

Status BiLstmTagger::Load(const std::string& path) {
  BinaryReader reader(path, kLstmMagic, kLstmVersion);
  if (!reader.ok()) return reader.status();
  int32_t char_dim = 0, char_hidden = 0, word_dim = 0, word_hidden = 0;
  if (!reader.ReadI32(&char_dim) || !reader.ReadI32(&char_hidden) ||
      !reader.ReadI32(&word_dim) || !reader.ReadI32(&word_hidden) ||
      !reader.ReadStringVec(&labels_) || !ReadVocab(&reader, &word_vocab_) ||
      !ReadVocab(&reader, &char_vocab_) ||
      !ReadMatrix(&reader, &char_emb_) || !ReadMatrix(&reader, &word_emb_) ||
      !ReadLstmParams(&reader, &char_fwd_) ||
      !ReadLstmParams(&reader, &char_bwd_) ||
      !ReadLstmParams(&reader, &word_fwd_) ||
      !ReadLstmParams(&reader, &word_bwd_) ||
      !ReadMatrix(&reader, &out_w_) || !reader.ReadFloatVec(&out_b_)) {
    return reader.status().ok()
               ? Status::Internal("BiLSTM: malformed model file")
               : reader.status();
  }
  options_.char_dim = char_dim;
  options_.char_hidden = char_hidden;
  options_.word_dim = word_dim;
  options_.word_hidden = word_hidden;
  label_ids_.clear();
  for (size_t i = 0; i < labels_.size(); ++i) {
    label_ids_[labels_[i]] = static_cast<int>(i);
  }
  trained_ = true;
  return Status::Ok();
}

}  // namespace pae::lstm
