#include "lstm/lstm_cell.h"

#include <cmath>

#include "math/kernels.h"
#include "math/vec.h"
#include "util/logging.h"

namespace pae::lstm {

void LstmParams::Init(Rng* rng) {
  wx.XavierInit(rng);
  wh.XavierInit(rng);
  std::fill(b.begin(), b.end(), 0.0f);
  // Forget-gate bias = 1.
  for (size_t i = hidden_dim; i < 2 * hidden_dim; ++i) b[i] = 1.0f;
}

void LstmParams::AddScaled(float alpha, const LstmParams& g) {
  wx.AddScaled(alpha, g.wx);
  wh.AddScaled(alpha, g.wh);
  PAE_CHECK_EQ(b.size(), g.b.size());
  math::kernels::Axpy(alpha, g.b.data(), b.data(), b.size());
}

double LstmParams::SquaredNorm() const {
  return math::kernels::SumSq(wx.data().data(), wx.data().size()) +
         math::kernels::SumSq(wh.data().data(), wh.data().size()) +
         math::kernels::SumSq(b.data(), b.size());
}

void LstmParams::SetZero() {
  wx.SetZero();
  wh.SetZero();
  std::fill(b.begin(), b.end(), 0.0f);
}

void LstmForward(const LstmParams& params,
                 const std::vector<std::vector<float>>& inputs,
                 LstmTrace* trace) {
  const size_t H = params.hidden_dim;
  const size_t T = inputs.size();
  // Gate-dimension contract: the stacked [i; f; o; g] parameter rows
  // must all be 4H wide or the pre-activation split below misaligns.
  PAE_DCHECK_EQ(params.wx.rows(), 4 * H);
  PAE_DCHECK_EQ(params.wh.rows(), 4 * H);
  PAE_DCHECK_EQ(params.wh.cols(), H);
  PAE_DCHECK_EQ(params.b.size(), 4 * H);
  trace->x = inputs;
  trace->i.assign(T, std::vector<float>(H));
  trace->f.assign(T, std::vector<float>(H));
  trace->o.assign(T, std::vector<float>(H));
  trace->g.assign(T, std::vector<float>(H));
  trace->c.assign(T, std::vector<float>(H));
  trace->h.assign(T, std::vector<float>(H));

  std::vector<float> pre(4 * H);
  std::vector<float> h_prev(H, 0.0f), c_prev(H, 0.0f);

  for (size_t t = 0; t < T; ++t) {
    PAE_DCHECK_EQ(inputs[t].size(), params.input_dim);
    // pre = Wx * x_t + Wh * h_{t-1} + b, fused over the packed [4H x D]
    // and [4H x H] gate blocks — one dispatched kernel per timestep.
    math::kernels::LstmGatePreact(params.wx.data().data(),
                                  params.wh.data().data(), params.b.data(),
                                  inputs[t].data(), h_prev.data(), H,
                                  params.input_dim, pre.data());
    auto& it = trace->i[t];
    auto& ft = trace->f[t];
    auto& ot = trace->o[t];
    auto& gt = trace->g[t];
    auto& ct = trace->c[t];
    auto& ht = trace->h[t];
    math::kernels::LstmActivateGates(pre.data(), c_prev.data(), H, it.data(),
                                     ft.data(), ot.data(), gt.data(),
                                     ct.data(), ht.data());
    h_prev = ht;
    c_prev = ct;
  }
}

void LstmBackward(const LstmParams& params, const LstmTrace& trace,
                  const std::vector<std::vector<float>>& dh, LstmParams* grad,
                  std::vector<std::vector<float>>* dx) {
  const size_t H = params.hidden_dim;
  const size_t T = trace.x.size();
  PAE_DCHECK_EQ(dh.size(), T);
  PAE_DCHECK_EQ(grad->wx.rows(), 4 * H);
  PAE_DCHECK_EQ(grad->b.size(), 4 * H);
  if (dx != nullptr) {
    dx->assign(T, std::vector<float>(params.input_dim, 0.0f));
  }
  if (T == 0) return;

  std::vector<float> dh_next(H, 0.0f);  // ∂L/∂h_t flowing from t+1
  std::vector<float> dc_next(H, 0.0f);  // ∂L/∂c_t flowing from t+1
  std::vector<float> dpre(4 * H);
  std::vector<float> dx_t(params.input_dim);
  std::vector<float> dh_prev(H);

  for (size_t t = T; t-- > 0;) {
    const auto& it = trace.i[t];
    const auto& ft = trace.f[t];
    const auto& ot = trace.o[t];
    const auto& gt = trace.g[t];
    const auto& ct = trace.c[t];
    const std::vector<float>* c_prev = (t > 0) ? &trace.c[t - 1] : nullptr;

    for (size_t k = 0; k < H; ++k) {
      const float dht = dh[t][k] + dh_next[k];
      const float tanh_c = std::tanh(ct[k]);
      const float dct = dht * ot[k] * (1.0f - tanh_c * tanh_c) + dc_next[k];
      const float cp = (c_prev != nullptr) ? (*c_prev)[k] : 0.0f;
      const float di = dct * gt[k];
      const float df = dct * cp;
      const float dout = dht * tanh_c;
      const float dg = dct * it[k];
      dpre[k] = di * it[k] * (1.0f - it[k]);
      dpre[H + k] = df * ft[k] * (1.0f - ft[k]);
      dpre[2 * H + k] = dout * ot[k] * (1.0f - ot[k]);
      dpre[3 * H + k] = dg * (1.0f - gt[k] * gt[k]);
      dc_next[k] = dct * ft[k];
    }

    // Parameter gradients.
    grad->wx.AddOuter(1.0f, dpre, trace.x[t]);
    if (t > 0) {
      grad->wh.AddOuter(1.0f, dpre, trace.h[t - 1]);
    }
    for (size_t r = 0; r < 4 * H; ++r) grad->b[r] += dpre[r];

    // Input gradient.
    if (dx != nullptr) {
      params.wx.MatTVec(dpre, &dx_t);
      (*dx)[t] = dx_t;
    }
    // Gradient to h_{t-1}.
    params.wh.MatTVec(dpre, &dh_prev);
    dh_next = dh_prev;
  }
}

}  // namespace pae::lstm
