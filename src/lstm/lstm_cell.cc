#include "lstm/lstm_cell.h"

#include <cmath>

#include "math/kernels.h"
#include "math/vec.h"
#include "util/logging.h"

namespace pae::lstm {

void LstmParams::Init(Rng* rng) {
  wx.XavierInit(rng);
  wh.XavierInit(rng);
  std::fill(b.begin(), b.end(), 0.0f);
  // Forget-gate bias = 1.
  for (size_t i = hidden_dim; i < 2 * hidden_dim; ++i) b[i] = 1.0f;
}

void LstmParams::AddScaled(float alpha, const LstmParams& g) {
  wx.AddScaled(alpha, g.wx);
  wh.AddScaled(alpha, g.wh);
  PAE_CHECK_EQ(b.size(), g.b.size());
  math::kernels::Axpy(alpha, g.b.data(), b.data(), b.size());
}

double LstmParams::SquaredNorm() const {
  return math::kernels::SumSq(wx.data().data(), wx.data().size()) +
         math::kernels::SumSq(wh.data().data(), wh.data().size()) +
         math::kernels::SumSq(b.data(), b.size());
}

void LstmParams::SetZero() {
  wx.SetZero();
  wh.SetZero();
  std::fill(b.begin(), b.end(), 0.0f);
}

void LstmForwardBatch(const LstmParams& params, const float* inputs,
                      size_t steps, size_t batch, LstmBatchTrace* trace) {
  const size_t H = params.hidden_dim;
  const size_t D = params.input_dim;
  // Gate-dimension contract: the stacked [i; f; o; g] parameter rows
  // must all be 4H wide or the pre-activation split below misaligns.
  PAE_DCHECK_EQ(params.wx.rows(), 4 * H);
  PAE_DCHECK_EQ(params.wh.rows(), 4 * H);
  PAE_DCHECK_EQ(params.wh.cols(), H);
  PAE_DCHECK_EQ(params.b.size(), 4 * H);
  trace->steps = steps;
  trace->batch = batch;
  trace->hidden = H;
  trace->input_dim = D;
  trace->x.assign(inputs, inputs + steps * batch * D);
  const size_t slab = batch * H;
  trace->i.assign(steps * slab, 0.0f);
  trace->f.assign(steps * slab, 0.0f);
  trace->o.assign(steps * slab, 0.0f);
  trace->g.assign(steps * slab, 0.0f);
  trace->c.assign(steps * slab, 0.0f);
  trace->h.assign(steps * slab, 0.0f);
  if (steps == 0 || batch == 0) return;

  std::vector<float> pre(batch * 4 * H);
  std::vector<float> zeros(slab, 0.0f);  // h/c at t = -1

  for (size_t t = 0; t < steps; ++t) {
    const float* h_prev =
        (t == 0) ? zeros.data() : trace->h.data() + (t - 1) * slab;
    const float* c_prev =
        (t == 0) ? zeros.data() : trace->c.data() + (t - 1) * slab;
    // pre_b = Wx·x_b + Wh·h_prev_b + bias for the whole batch: one
    // [4H×D]·[D×B] + [4H×H]·[H×B] GEMM pair per timestep.
    math::kernels::LstmGatePreactBatch(
        params.wx.data().data(), params.wh.data().data(), params.b.data(),
        trace->x.data() + t * batch * D, h_prev, H, D, batch, pre.data());
    float* it = trace->i.data() + t * slab;
    float* ft = trace->f.data() + t * slab;
    float* ot = trace->o.data() + t * slab;
    float* gt = trace->g.data() + t * slab;
    float* ct = trace->c.data() + t * slab;
    float* ht = trace->h.data() + t * slab;
    for (size_t b = 0; b < batch; ++b) {
      math::kernels::LstmActivateGates(pre.data() + b * 4 * H, c_prev + b * H,
                                       H, it + b * H, ft + b * H, ot + b * H,
                                       gt + b * H, ct + b * H, ht + b * H);
    }
  }
}

void LstmBackwardBatch(const LstmParams& params, const LstmBatchTrace& trace,
                       const float* dh, float* dpre, float* dx) {
  const size_t H = trace.hidden;
  const size_t D = trace.input_dim;
  const size_t B = trace.batch;
  const size_t T = trace.steps;
  const size_t g4 = 4 * H;
  PAE_DCHECK_EQ(params.hidden_dim, H);
  PAE_DCHECK_EQ(params.input_dim, D);
  if (T == 0 || B == 0) return;
  const size_t slab = B * H;

  std::vector<float> dh_next(slab, 0.0f);  // ∂L/∂h_t flowing from t+1
  std::vector<float> dc_next(slab, 0.0f);  // ∂L/∂c_t flowing from t+1

  for (size_t t = T; t-- > 0;) {
    const float* it = trace.i.data() + t * slab;
    const float* ft = trace.f.data() + t * slab;
    const float* ot = trace.o.data() + t * slab;
    const float* gt = trace.g.data() + t * slab;
    const float* ct = trace.c.data() + t * slab;
    const float* c_prev = (t > 0) ? trace.c.data() + (t - 1) * slab : nullptr;
    float* dpre_t = dpre + t * B * g4;

    for (size_t b = 0; b < B; ++b) {
      const float* ib = it + b * H;
      const float* fb = ft + b * H;
      const float* ob = ot + b * H;
      const float* gb = gt + b * H;
      const float* cb = ct + b * H;
      const float* dhb = dh + t * slab + b * H;
      float* dnb = dh_next.data() + b * H;
      float* dcb = dc_next.data() + b * H;
      float* dp = dpre_t + b * g4;
      for (size_t k = 0; k < H; ++k) {
        const float dht = dhb[k] + dnb[k];
        const float tanh_c = std::tanh(cb[k]);
        const float dct = dht * ob[k] * (1.0f - tanh_c * tanh_c) + dcb[k];
        const float cp = (c_prev != nullptr) ? c_prev[b * H + k] : 0.0f;
        const float di = dct * gb[k];
        const float df = dct * cp;
        const float dout = dht * tanh_c;
        const float dg = dct * ib[k];
        dp[k] = di * ib[k] * (1.0f - ib[k]);
        dp[H + k] = df * fb[k] * (1.0f - fb[k]);
        dp[2 * H + k] = dout * ob[k] * (1.0f - ob[k]);
        dp[3 * H + k] = dg * (1.0f - gb[k] * gb[k]);
        dcb[k] = dct * fb[k];
      }
    }

    // Input gradients: batched transpose product, weight rows streamed
    // once for all B sequences.
    if (dx != nullptr) {
      float* dx_t = dx + t * B * D;
      std::fill(dx_t, dx_t + B * D, 0.0f);
      math::kernels::MatTVecBatch(params.wx.data().data(), g4, D, dpre_t, B,
                                  dx_t);
    }
    // Gradient to h_{t-1}.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    math::kernels::MatTVecBatch(params.wh.data().data(), g4, H, dpre_t, B,
                                dh_next.data());
  }
}

void LstmAccumulateGrads(const LstmBatchTrace& trace, const float* dpre,
                         size_t b, LstmParams* grad) {
  const size_t H = trace.hidden;
  const size_t D = trace.input_dim;
  const size_t B = trace.batch;
  const size_t T = trace.steps;
  const size_t g4 = 4 * H;
  PAE_DCHECK_EQ(grad->wx.rows(), g4);
  PAE_DCHECK_EQ(grad->b.size(), g4);
  PAE_DCHECK_LT(b, B);
  for (size_t t = T; t-- > 0;) {
    const float* dp = dpre + (t * B + b) * g4;
    const float* xb = trace.x.data() + (t * B + b) * D;
    math::kernels::AddOuter(1.0f, dp, xb, grad->wx.data().data(), g4, D);
    if (t > 0) {
      const float* hb = trace.h.data() + ((t - 1) * B + b) * H;
      math::kernels::AddOuter(1.0f, dp, hb, grad->wh.data().data(), g4, H);
    }
    for (size_t r = 0; r < g4; ++r) grad->b[r] += dp[r];
  }
}

// The vector-of-vectors API wraps the batch core at B = 1 so there is a
// single timestep implementation; per-element the arithmetic (and thus
// every bit of output) is unchanged from the historical per-step path.

void LstmForward(const LstmParams& params,
                 const std::vector<std::vector<float>>& inputs,
                 LstmTrace* trace) {
  const size_t H = params.hidden_dim;
  const size_t D = params.input_dim;
  const size_t T = inputs.size();
  std::vector<float> flat(T * D);
  for (size_t t = 0; t < T; ++t) {
    PAE_DCHECK_EQ(inputs[t].size(), D);
    std::copy(inputs[t].begin(), inputs[t].end(), flat.begin() + t * D);
  }
  LstmBatchTrace bt;
  LstmForwardBatch(params, flat.data(), T, 1, &bt);
  trace->x = inputs;
  auto unpack = [T](const std::vector<float>& src, size_t width,
                    std::vector<std::vector<float>>* dst) {
    dst->assign(T, std::vector<float>(width));
    for (size_t t = 0; t < T; ++t) {
      std::copy(src.begin() + t * width, src.begin() + (t + 1) * width,
                (*dst)[t].begin());
    }
  };
  unpack(bt.i, H, &trace->i);
  unpack(bt.f, H, &trace->f);
  unpack(bt.o, H, &trace->o);
  unpack(bt.g, H, &trace->g);
  unpack(bt.c, H, &trace->c);
  unpack(bt.h, H, &trace->h);
}

void LstmBackward(const LstmParams& params, const LstmTrace& trace,
                  const std::vector<std::vector<float>>& dh, LstmParams* grad,
                  std::vector<std::vector<float>>* dx) {
  const size_t H = params.hidden_dim;
  const size_t D = params.input_dim;
  const size_t T = trace.x.size();
  PAE_DCHECK_EQ(dh.size(), T);
  PAE_DCHECK_EQ(grad->wx.rows(), 4 * H);
  PAE_DCHECK_EQ(grad->b.size(), 4 * H);
  if (dx != nullptr) {
    dx->assign(T, std::vector<float>(D, 0.0f));
  }
  if (T == 0) return;

  LstmBatchTrace bt;
  bt.steps = T;
  bt.batch = 1;
  bt.hidden = H;
  bt.input_dim = D;
  auto pack = [T](const std::vector<std::vector<float>>& src, size_t width,
                  std::vector<float>* dst) {
    dst->resize(T * width);
    for (size_t t = 0; t < T; ++t) {
      std::copy(src[t].begin(), src[t].end(), dst->begin() + t * width);
    }
  };
  pack(trace.x, D, &bt.x);
  pack(trace.i, H, &bt.i);
  pack(trace.f, H, &bt.f);
  pack(trace.o, H, &bt.o);
  pack(trace.g, H, &bt.g);
  pack(trace.c, H, &bt.c);
  pack(trace.h, H, &bt.h);
  std::vector<float> dh_flat;
  pack(dh, H, &dh_flat);

  std::vector<float> dpre(T * 4 * H);
  std::vector<float> dx_flat(dx != nullptr ? T * D : 0);
  LstmBackwardBatch(params, bt, dh_flat.data(), dpre.data(),
                    dx != nullptr ? dx_flat.data() : nullptr);
  LstmAccumulateGrads(bt, dpre.data(), 0, grad);
  if (dx != nullptr) {
    for (size_t t = 0; t < T; ++t) {
      std::copy(dx_flat.begin() + t * D, dx_flat.begin() + (t + 1) * D,
                (*dx)[t].begin());
    }
  }
}

}  // namespace pae::lstm
