#ifndef PAE_LSTM_LSTM_CELL_H_
#define PAE_LSTM_LSTM_CELL_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "util/rng.h"

namespace pae::lstm {

/// Parameters of one LSTM direction. Gate order within the stacked 4H
/// rows is [input; forget; output; candidate].
struct LstmParams {
  LstmParams() = default;
  LstmParams(size_t input_dim, size_t hidden_dim)
      : wx(4 * hidden_dim, input_dim),
        wh(4 * hidden_dim, hidden_dim),
        b(4 * hidden_dim, 0.0f),
        input_dim(input_dim),
        hidden_dim(hidden_dim) {}

  /// Xavier-initializes weights; forget-gate bias starts at 1.0 (the
  /// standard trick to keep early memory open).
  void Init(Rng* rng);

  /// p += alpha * g (same shapes); used by SGD.
  void AddScaled(float alpha, const LstmParams& g);

  /// Sum of squared parameter entries (for clipping).
  double SquaredNorm() const;

  void SetZero();

  math::Matrix wx;       // 4H × In
  math::Matrix wh;       // 4H × H
  std::vector<float> b;  // 4H
  size_t input_dim = 0;
  size_t hidden_dim = 0;
};

/// Per-sequence activations recorded by Forward for use in Backward.
/// All vectors are in processing order (the caller reverses inputs for
/// the backward direction of a BiLSTM).
struct LstmTrace {
  std::vector<std::vector<float>> x;  // inputs
  std::vector<std::vector<float>> i, f, o, g;  // gate activations
  std::vector<std::vector<float>> c;  // cell states
  std::vector<std::vector<float>> h;  // hidden states (outputs)
};

/// Activations of a batch of B equal-length sequences, stored time-major:
/// slab t holds the B per-sequence vectors contiguously, so sequence b's
/// values at step t start at (t·batch + b)·width. This is exactly the
/// [B × width] panel layout the batched GEMM kernels consume, so one
/// timestep is one kernel call for the whole batch.
struct LstmBatchTrace {
  size_t steps = 0;
  size_t batch = 0;
  size_t hidden = 0;
  size_t input_dim = 0;
  std::vector<float> x;                 // [steps][batch][input_dim]
  std::vector<float> i, f, o, g;        // [steps][batch][hidden]
  std::vector<float> c, h;              // [steps][batch][hidden]

  const float* X(size_t t) const { return x.data() + t * batch * input_dim; }
  const float* H(size_t t) const { return h.data() + t * batch * hidden; }
  const float* C(size_t t) const { return c.data() + t * batch * hidden; }
};

/// Runs the LSTM over `inputs` (processing order), recording activations.
void LstmForward(const LstmParams& params,
                 const std::vector<std::vector<float>>& inputs,
                 LstmTrace* trace);

/// Backpropagates through the recorded trace. `dh` holds ∂L/∂h_t for each
/// step (same order as trace). Parameter gradients are *accumulated* into
/// `grad` (caller zeroes); input gradients are written to `dx` if non-null.
void LstmBackward(const LstmParams& params, const LstmTrace& trace,
                  const std::vector<std::vector<float>>& dh, LstmParams* grad,
                  std::vector<std::vector<float>>* dx);

/// Runs the LSTM over a batch of `batch` equal-length sequences packed
/// time-major in `inputs` ([steps × batch × input_dim]): one batched
/// gate-preactivation GEMM per timestep. Every per-element computation
/// is identical to the single-sequence path, so each sequence's
/// activations are bit-equal to running LstmForward on it alone —
/// independent of batch width.
void LstmForwardBatch(const LstmParams& params, const float* inputs,
                      size_t steps, size_t batch, LstmBatchTrace* trace);

/// Batched backward over a recorded batch trace. `dh` is ∂L/∂h packed
/// like the trace ([steps × batch × hidden]). Writes the gate
/// pre-activation gradients to `dpre` ([steps × batch × 4H]) and, when
/// non-null, input gradients to `dx` ([steps × batch × input_dim]).
/// Parameter-gradient accumulation is deliberately NOT done here: float
/// accumulation into shared gradient buffers is order-sensitive, so
/// callers replay it per sequence in canonical order via
/// LstmAccumulateGrads — which is what keeps batched training
/// byte-identical to sequential training.
void LstmBackwardBatch(const LstmParams& params, const LstmBatchTrace& trace,
                       const float* dh, float* dpre, float* dx);

/// Accumulates sequence `b`'s parameter gradients from a batched
/// backward into `grad`, sweeping timesteps in descending order with the
/// same AddOuter/bias-add sequence as the single-sequence LstmBackward —
/// bit-identical replay of the unbatched accumulation.
void LstmAccumulateGrads(const LstmBatchTrace& trace, const float* dpre,
                         size_t b, LstmParams* grad);

}  // namespace pae::lstm

#endif  // PAE_LSTM_LSTM_CELL_H_
