#ifndef PAE_LSTM_LSTM_CELL_H_
#define PAE_LSTM_LSTM_CELL_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"
#include "util/rng.h"

namespace pae::lstm {

/// Parameters of one LSTM direction. Gate order within the stacked 4H
/// rows is [input; forget; output; candidate].
struct LstmParams {
  LstmParams() = default;
  LstmParams(size_t input_dim, size_t hidden_dim)
      : wx(4 * hidden_dim, input_dim),
        wh(4 * hidden_dim, hidden_dim),
        b(4 * hidden_dim, 0.0f),
        input_dim(input_dim),
        hidden_dim(hidden_dim) {}

  /// Xavier-initializes weights; forget-gate bias starts at 1.0 (the
  /// standard trick to keep early memory open).
  void Init(Rng* rng);

  /// p += alpha * g (same shapes); used by SGD.
  void AddScaled(float alpha, const LstmParams& g);

  /// Sum of squared parameter entries (for clipping).
  double SquaredNorm() const;

  void SetZero();

  math::Matrix wx;       // 4H × In
  math::Matrix wh;       // 4H × H
  std::vector<float> b;  // 4H
  size_t input_dim = 0;
  size_t hidden_dim = 0;
};

/// Per-sequence activations recorded by Forward for use in Backward.
/// All vectors are in processing order (the caller reverses inputs for
/// the backward direction of a BiLSTM).
struct LstmTrace {
  std::vector<std::vector<float>> x;  // inputs
  std::vector<std::vector<float>> i, f, o, g;  // gate activations
  std::vector<std::vector<float>> c;  // cell states
  std::vector<std::vector<float>> h;  // hidden states (outputs)
};

/// Runs the LSTM over `inputs` (processing order), recording activations.
void LstmForward(const LstmParams& params,
                 const std::vector<std::vector<float>>& inputs,
                 LstmTrace* trace);

/// Backpropagates through the recorded trace. `dh` holds ∂L/∂h_t for each
/// step (same order as trace). Parameter gradients are *accumulated* into
/// `grad` (caller zeroes); input gradients are written to `dx` if non-null.
void LstmBackward(const LstmParams& params, const LstmTrace& trace,
                  const std::vector<std::vector<float>>& dh, LstmParams* grad,
                  std::vector<std::vector<float>>* dx);

}  // namespace pae::lstm

#endif  // PAE_LSTM_LSTM_CELL_H_
