#ifndef PAE_LSTM_BILSTM_TAGGER_H_
#define PAE_LSTM_BILSTM_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "lstm/lstm_cell.h"
#include "math/matrix.h"
#include "text/sequence_tagger.h"
#include "text/vocab.h"
#include "util/rng.h"

namespace pae::util {
class ThreadPool;
}  // namespace pae::util

namespace pae::lstm {

/// Hyper-parameters of the BiLSTM tagger. The epoch count is the
/// experimental knob of Tables II/III and Fig. 6 (2 vs 10 epochs).
struct BiLstmOptions {
  int char_dim = 12;
  int char_hidden = 12;
  int word_dim = 24;
  int word_hidden = 32;
  int epochs = 2;
  float learning_rate = 0.25f;
  float dropout = 0.5f;
  float clip_norm = 5.0f;
  /// Probability of replacing a training-singleton word by <unk> so the
  /// unknown-word embedding gets trained.
  float unk_replace_prob = 0.3f;
  uint64_t seed = 42;
  /// Max sequences per batched GEMM panel (char-LSTM buckets and decode
  /// groups). Purely a memory/throughput trade: every value ≥ 1 yields
  /// byte-identical training and predictions, because the batched
  /// kernels compute each output element with the same fixed-lane
  /// arithmetic as the single-vector path.
  int batch_size = 32;
  /// Test hook: poison one output-bias gradient with a quiet NaN just
  /// before clipping at this global SGD step (-1 = never). Exercises
  /// the non-finite-gradient-norm skip path deterministically.
  int64_t inject_nonfinite_grad_at = -1;
};

/// Bidirectional-LSTM sequence tagger in the NeuroNER configuration the
/// paper describes (§VI-D): character embeddings feed a char-level
/// BiLSTM whose final states are the input of a word-level BiLSTM; the
/// word embedding is appended to the BiLSTM output; a feed-forward
/// layer yields per-token label probabilities. Trained with SGD and
/// (inverted) dropout.
class BiLstmTagger : public text::SequenceTagger {
 public:
  explicit BiLstmTagger(BiLstmOptions options = {});

  Status Train(const std::vector<text::LabeledSequence>& data) override;
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override;
  /// Argmax labels with softmax posteriors as confidences.
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override;
  /// Batched decode: groups equal-length sentences into panels of up to
  /// options.batch_size and runs one GEMM per timestep per panel; panels
  /// fan out over `pool` when given. Output i is byte-identical to
  /// PredictScored(seqs[i]) for every batch size and thread count.
  std::vector<ScoredPrediction> PredictScoredBatch(
      const std::vector<text::LabeledSequence>& seqs,
      util::ThreadPool* pool = nullptr) const;
  std::string Name() const override { return "bilstm"; }

  /// Persists the trained network (vocabularies, labels, all weight
  /// matrices) to `path`.
  Status Save(const std::string& path) const;
  /// Restores a model previously written by Save.
  Status Load(const std::string& path);

  /// Mean training loss (per token) of the final epoch.
  double final_epoch_loss() const { return final_epoch_loss_; }
  /// Mean per-token training loss of every epoch, in order.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }
  const std::vector<std::string>& labels() const { return labels_; }
  bool trained() const { return trained_; }

 private:
  struct CharBatch;      // one equal-char-length panel of tokens
  struct SentenceBatch;  // forward state of S equal-length sentences

  /// Splits a token into character-unit strings (code points).
  static std::vector<std::string> TokenChars(const std::string& token);

  /// Buckets tokens by exact character count, chunks each bucket into
  /// panels of ≤ options.batch_size, and runs the char BiLSTM once per
  /// panel (one batched GEMM per char position). Fills sb->char_batches
  /// and the token → (panel, column) map sb->char_loc.
  void RunCharBatches(const std::vector<std::vector<int>>& char_ids,
                      SentenceBatch* sb) const;

  /// Forward pass over S same-length sentences (token n = s*T + t).
  /// `dropout_masks` (one [2*char_hidden] mask per token) applies only
  /// when `training`. Fills the activations backprop needs.
  void ForwardBatch(const std::vector<int>& word_ids,
                    const std::vector<std::vector<int>>& char_ids,
                    const std::vector<std::vector<float>>& dropout_masks,
                    bool training, size_t num_sentences, size_t num_tokens,
                    SentenceBatch* sb) const;

  BiLstmOptions options_;
  text::Vocab word_vocab_;
  text::Vocab char_vocab_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int> label_ids_;

  math::Matrix char_emb_;   // |chars| × char_dim
  math::Matrix word_emb_;   // |words| × word_dim
  LstmParams char_fwd_, char_bwd_;  // char_dim → char_hidden
  LstmParams word_fwd_, word_bwd_;  // 2*char_hidden → word_hidden
  math::Matrix out_w_;      // L × (2*word_hidden + word_dim)
  std::vector<float> out_b_;

  double final_epoch_loss_ = 0.0;
  std::vector<double> epoch_losses_;
  bool trained_ = false;
};

}  // namespace pae::lstm

#endif  // PAE_LSTM_BILSTM_TAGGER_H_
