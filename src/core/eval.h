#ifndef PAE_CORE_EVAL_H_
#define PAE_CORE_EVAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace pae::core {

/// Triple-level evaluation results per §VI-C. `precision` is
/// correct / (correct + incorrect + maybe_incorrect); triples that do
/// not intersect the truth sample are `unjudged` and excluded, exactly
/// as in the paper's protocol (the truth-sample bias §VI-B discusses).
struct TripleMetrics {
  size_t total = 0;
  size_t correct = 0;
  size_t incorrect = 0;
  size_t maybe_incorrect = 0;
  size_t unjudged = 0;

  double precision = 0;            // percent
  double coverage = 0;             // percent of products with ≥1 triple
  size_t covered_products = 0;
  double triples_per_product = 0;  // avg over all products (Fig. 4)
};

/// Pair-level evaluation (Table I "Precision Pairs"): fraction of
/// distinct <attribute, value> pairs that are valid associations.
struct PairMetrics {
  size_t total = 0;
  size_t valid = 0;
  double precision = 0;  // percent
};

/// Judges extracted triples against the truth sample. Attribute names
/// are canonicalized through the sample's alias map and values are
/// normalized before matching.
TripleMetrics EvaluateTriples(const std::vector<Triple>& triples,
                              const TruthSample& truth, size_t num_products);

/// Judges distinct <attribute, value> pairs.
PairMetrics EvaluatePairs(const std::vector<AttributeValue>& pairs,
                          const TruthSample& truth);

/// Per-attribute product coverage (Figs. 7/8): canonical attribute →
/// percent of products having a triple with that attribute.
std::unordered_map<std::string, double> PerAttributeCoverage(
    const std::vector<Triple>& triples, const TruthSample& truth,
    size_t num_products);

/// Oracle recall — a measurement the paper could NOT make: its truth
/// sample was produced by the system itself, so "it is difficult to
/// evaluate how many attributes are left out" (§VI-B). Our synthetic
/// corpus knows every correct triple, so true recall is computable:
/// the fraction of distinct correct truth triples the system found.
struct OracleMetrics {
  size_t truth_triples = 0;  // distinct correct triples in the truth
  size_t recalled = 0;
  double recall = 0;  // percent
  /// canonical attribute → recall percent.
  std::unordered_map<std::string, double> recall_by_attribute;
};

OracleMetrics EvaluateOracleRecall(const std::vector<Triple>& triples,
                                   const TruthSample& truth);

/// Attribute-name discovery quality (the paper's problem statement asks
/// for both names and values; its evaluation only scores triples).
/// `system_attributes` are the attribute names the seed/pipeline uses.
struct AttributeDiscoveryMetrics {
  size_t truth_attributes = 0;   // distinct canonical attributes
  size_t discovered = 0;         // of those, covered by a system name
  size_t spurious = 0;           // system names not mapping to any
  double recall = 0;             // percent discovered
};

AttributeDiscoveryMetrics EvaluateAttributeDiscovery(
    const std::vector<std::string>& system_attributes,
    const TruthSample& truth);

}  // namespace pae::core

#endif  // PAE_CORE_EVAL_H_
