#include "core/partition.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/preprocess.h"
#include "core/tagging.h"
#include "crf/crf_tagger.h"
#include "lstm/bilstm_tagger.h"
#include "util/rng.h"

namespace pae::core {

namespace {

struct SpanCounts {
  int gold = 0;
  int predicted = 0;
  int matched = 0;

  double recall() const {
    return gold > 0 ? static_cast<double>(matched) / gold : 0.0;
  }
  double precision() const {
    return predicted > 0 ? static_cast<double>(matched) / predicted : 1.0;
  }
};

std::string SpanKey(size_t sentence, const text::ValueSpan& span) {
  return std::to_string(sentence) + ":" + std::to_string(span.begin) + "-" +
         std::to_string(span.end);
}

std::unique_ptr<text::SequenceTagger> MakeTagger(
    const PipelineConfig& config) {
  if (config.model == ModelType::kBiLstm) {
    return std::make_unique<lstm::BiLstmTagger>(config.lstm);
  }
  return std::make_unique<crf::CrfTagger>(config.crf);
}

/// Scores `tagger` against held-out gold labels, per attribute.
void ScoreOnHoldout(const text::SequenceTagger& tagger,
                    const std::vector<text::LabeledSequence>& holdout,
                    const std::unordered_set<std::string>& attributes,
                    std::unordered_map<std::string, SpanCounts>* counts) {
  for (size_t s = 0; s < holdout.size(); ++s) {
    const text::LabeledSequence& sentence = holdout[s];
    std::vector<text::ValueSpan> gold = text::DecodeBioSpans(sentence.labels);
    std::vector<std::string> predicted_labels = tagger.Predict(sentence);
    std::vector<text::ValueSpan> predicted =
        text::DecodeBioSpans(predicted_labels);

    std::unordered_map<std::string, std::string> gold_index;  // key → attr
    for (const text::ValueSpan& span : gold) {
      if (attributes.count(span.attribute) == 0) continue;
      (*counts)[span.attribute].gold += 1;
      gold_index[SpanKey(s, span)] = span.attribute;
    }
    for (const text::ValueSpan& span : predicted) {
      if (attributes.count(span.attribute) == 0) continue;
      (*counts)[span.attribute].predicted += 1;
      auto it = gold_index.find(SpanKey(s, span));
      if (it != gold_index.end() && it->second == span.attribute) {
        (*counts)[span.attribute].matched += 1;
      }
    }
  }
}

/// Restricts labels to the given attributes (others become O).
std::vector<text::LabeledSequence> FilterLabels(
    const std::vector<text::LabeledSequence>& data,
    const std::unordered_set<std::string>& keep) {
  std::vector<text::LabeledSequence> out = data;
  for (text::LabeledSequence& seq : out) {
    for (std::string& label : seq.labels) {
      std::string attribute;
      bool begin = false;
      if (text::ParseBioLabel(label, &attribute, &begin) &&
          keep.count(attribute) == 0) {
        label = text::kOutsideLabel;
      }
    }
  }
  return out;
}

}  // namespace

Result<PartitionPlan> PlanAttributePartition(
    const ProcessedCorpus& corpus, const PipelineConfig& config,
    const PartitionOptions& options) {
  // Seed construction + distant labels, as the pipeline would build them.
  Seed seed = BuildSeed(corpus, config.preprocess);
  if (seed.pairs.empty()) {
    return Status::FailedPrecondition(
        "partition planning: empty seed for " + corpus.category);
  }
  DistantSupervisor supervisor(seed.pairs);
  std::vector<text::LabeledSequence> labeled;
  for (const ProcessedPage& page : corpus.pages) {
    if (page.tables.empty()) continue;
    for (const text::LabeledSequence& sentence : page.sentences) {
      text::LabeledSequence seq = sentence;
      supervisor.Label(&seq);
      labeled.push_back(std::move(seq));
    }
  }
  if (labeled.size() < 20) {
    return Status::FailedPrecondition(
        "partition planning: too few seed-labeled sentences");
  }

  // Train / holdout split.
  Rng rng(options.seed);
  rng.Shuffle(&labeled);
  const size_t holdout_size = std::max<size_t>(
      1, static_cast<size_t>(options.holdout_fraction *
                             static_cast<double>(labeled.size())));
  std::vector<text::LabeledSequence> holdout(
      labeled.begin(), labeled.begin() + static_cast<long>(holdout_size));
  std::vector<text::LabeledSequence> train(
      labeled.begin() + static_cast<long>(holdout_size), labeled.end());

  const std::unordered_set<std::string> all_attributes(
      seed.attributes.begin(), seed.attributes.end());

  // Global model.
  std::unique_ptr<text::SequenceTagger> global = MakeTagger(config);
  PAE_RETURN_IF_ERROR(global->Train(train));
  std::unordered_map<std::string, SpanCounts> global_counts;
  ScoreOnHoldout(*global, holdout, all_attributes, &global_counts);

  // Weak attributes → one specialized group candidate.
  std::unordered_set<std::string> weak;
  for (const std::string& attribute : seed.attributes) {
    const SpanCounts& counts = global_counts[attribute];
    if (counts.gold > 0 && counts.recall() < options.weak_recall) {
      weak.insert(attribute);
    }
  }

  std::unordered_map<std::string, SpanCounts> special_counts;
  if (!weak.empty()) {
    // Specialized training set: labels restricted to the weak group,
    // balanced positives/negatives (as the §VIII-D pipeline does).
    std::vector<text::LabeledSequence> filtered = FilterLabels(train, weak);
    std::vector<text::LabeledSequence> positives, negatives;
    for (text::LabeledSequence& seq : filtered) {
      bool has_span = false;
      for (const std::string& label : seq.labels) {
        if (label != text::kOutsideLabel) {
          has_span = true;
          break;
        }
      }
      (has_span ? positives : negatives).push_back(std::move(seq));
    }
    rng.Shuffle(&negatives);
    if (negatives.size() > positives.size()) {
      negatives.resize(positives.size());
    }
    std::vector<text::LabeledSequence> special_train = std::move(positives);
    for (auto& seq : negatives) special_train.push_back(std::move(seq));

    if (!special_train.empty()) {
      std::unique_ptr<text::SequenceTagger> specialized = MakeTagger(config);
      Status trained = specialized->Train(special_train);
      if (trained.ok()) {
        std::vector<text::LabeledSequence> special_holdout =
            FilterLabels(holdout, weak);
        ScoreOnHoldout(*specialized, special_holdout, weak, &special_counts);
      }
    }
  }

  // Assignment.
  PartitionPlan plan;
  for (const std::string& attribute : seed.attributes) {
    AttributeDiagnostics diag;
    diag.attribute = attribute;
    const SpanCounts& g = global_counts[attribute];
    diag.gold_spans = g.gold;
    diag.global_recall = g.recall();
    diag.global_precision = g.precision();
    if (weak.count(attribute) > 0 && special_counts.count(attribute) > 0) {
      const SpanCounts& s = special_counts[attribute];
      diag.tried_specialized = true;
      diag.specialized_recall = s.recall();
      diag.specialized_precision = s.precision();
      diag.assign_specialized =
          s.recall() >= g.recall() + options.min_recall_gain &&
          s.precision() >= g.precision() - options.max_precision_loss;
    }
    if (diag.assign_specialized) {
      plan.specialized_group.push_back(attribute);
    } else {
      plan.global_group.push_back(attribute);
    }
    plan.diagnostics.push_back(std::move(diag));
  }
  return plan;
}

}  // namespace pae::core
