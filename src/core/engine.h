#ifndef PAE_CORE_ENGINE_H_
#define PAE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/types.h"
#include "text/labeled_sequence.h"
#include "text/negation.h"
#include "text/pos_tagger.h"
#include "text/sequence_tagger.h"
#include "text/tokenizer.h"
#include "util/metrics.h"
#include "util/status.h"

namespace pae::core {

/// Per-request extraction knobs. The subset of ApplyOptions that makes
/// sense for one page at a time: the veto rules are corpus-level
/// statistics (item counts across products) and are therefore a
/// bootstrap-time concern — a serving engine runs in the "known catalog
/// values" deployment mode (accepted_pairs) the paper describes for
/// production, or unfiltered.
struct EngineOptions {
  /// Drop spans whose minimum posterior confidence is below this.
  double min_span_confidence = 0.0;
  /// Drop spans in negated sentences (Definition 3.1).
  bool negation_filtering = true;
  /// When non-empty, only <attribute, value> pairs present in this set
  /// are emitted (keys via PairKey(attribute, NormalizeValue(value))).
  std::unordered_set<std::string> accepted_pairs;
};

/// Bucket bounds for per-request latencies: 10 µs .. 10 s in a 1-2-5
/// progression. The pipeline-stage default (100 µs .. 300 s) is too
/// coarse for a request that usually finishes under a millisecond.
/// Shared by the engine's own timer, the serve-side request timer and
/// pae-loadgen's client-side histogram so their quantiles line up.
std::vector<double> RequestLatencyBounds();

/// Telemetry for one ExtractionEngine::Extract call.
struct EngineRequestStats {
  int64_t sentences = 0;
  int64_t negation_dropped = 0;
  int64_t spans = 0;
  int64_t confidence_dropped = 0;
  int64_t triples = 0;
};

/// An immutable extraction snapshot: one trained SequenceTagger plus the
/// language resources (tokenizer, PoS tagger, negation cues) and request
/// options needed to turn a raw product page into triples.
///
/// Engines are the unit of model hot-swap in pae-serve: a new model is
/// loaded into a fresh engine and published behind the generation
/// pointer while in-flight requests keep using the old one. Everything
/// model-sized — the tagger's weights and feature dictionary, the
/// tokenizer lexicon trie, the PoS dictionary — is allocated exactly
/// once, at construction; `Extract` is const, thread-safe, and performs
/// only request-sized work against per-worker `Scratch` buffers (the
/// CRF's feature-encoding scratch is thread-local inside CrfTagger, so
/// each server worker reuses one encoder across every request it
/// serves).
///
/// Byte-equality contract: for the same model generation and the same
/// options, `Extract(product_id, html)` returns exactly the triples
/// ExtractWithModel(tagger, ProcessCorpus(one-page corpus),
/// options with veto_rules=false) returns — tests/serve_test.cc holds
/// the two paths together.
class ExtractionEngine {
 public:
  /// Builds a snapshot. `tagger` must already be trained; the lexicons
  /// are copied into engine-owned resources. Construction is the only
  /// model-sized allocation in an engine's lifetime (tracked by the
  /// `engine.snapshots_built` counter).
  ExtractionEngine(std::shared_ptr<const text::SequenceTagger> tagger,
                   text::Language language,
                   const std::vector<std::string>& tokenizer_lexicon,
                   const text::PosLexicon& pos_lexicon,
                   EngineOptions options);
  ~ExtractionEngine();

  ExtractionEngine(const ExtractionEngine&) = delete;
  ExtractionEngine& operator=(const ExtractionEngine&) = delete;

  /// Reusable per-worker request buffers. A worker allocates one Scratch
  /// up front (counted by `engine.scratch_created` / the
  /// `engine.scratch_live` gauge) and reuses it for every request:
  /// steady-state request handling allocates nothing model-sized, which
  /// pae-loadgen asserts by watching those metrics stay flat while
  /// `serve.requests` grows. A Scratch must not be shared between
  /// concurrent requests; it may be handed to a different engine
  /// generation after a hot-swap.
  class Scratch {
   public:
    ~Scratch();

   private:
    friend class ExtractionEngine;
    Scratch();

    std::vector<text::LabeledSequence> sentences_;
    struct Pending {
      Triple triple;
      std::string pair_key;
    };
    std::vector<Pending> pending_;
    std::unordered_set<std::string> seen_;
    std::vector<std::string> value_tokens_;
  };

  static std::unique_ptr<Scratch> NewScratch();

  /// Extracts the triples of one raw product page. `scratch` may be
  /// null (a temporary is used — convenient in tests, allocation-heavy
  /// in servers). `stats` is overwritten when non-null.
  std::vector<Triple> Extract(std::string_view product_id,
                              std::string_view html, Scratch* scratch,
                              EngineRequestStats* stats = nullptr) const;

  const text::SequenceTagger& tagger() const { return *tagger_; }
  text::Language language() const { return language_; }
  const EngineOptions& options() const { return options_; }
  /// The tagger's short name ("crf", "bilstm", ...).
  std::string ModelName() const { return tagger_->Name(); }

 private:
  std::shared_ptr<const text::SequenceTagger> tagger_;
  text::Language language_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  std::unique_ptr<text::PosTagger> pos_tagger_;
  text::NegationDetector negation_;
  EngineOptions options_;
  /// Hot-path metric handles resolved once (registry pointers are
  /// stable), so Extract never takes the registry lock.
  util::Counter* requests_counter_;
  util::Counter* triples_counter_;
  util::Histogram* latency_histogram_;
};

/// Loads a persisted CRF model plus the corpus language resources under
/// `resources_dir` (manifest.tsv / lexicon.txt / pos_lexicon.tsv, the
/// SaveCorpus layout) into a fresh engine. The model format is sniffed
/// from the file's magic: a `.paez` artifact (pae-model-pack) is mmap'ed
/// and used in place — microsecond loads, pages shared across processes
/// — while a legacy CrfTagger::Save file takes the copying parse path.
/// Both yield byte-identical predictions for the same model. When
/// `load_accepted_pairs` is true, `model_path + ".pairs"` — the known
/// catalog values emitted next to a saved model — is read into
/// options.accepted_pairs when present.
Result<std::shared_ptr<const ExtractionEngine>> LoadCrfEngine(
    const std::string& model_path, const std::string& resources_dir,
    EngineOptions options, bool load_accepted_pairs = true);

}  // namespace pae::core

#endif  // PAE_CORE_ENGINE_H_
