#ifndef PAE_CORE_CORPUS_IO_H_
#define PAE_CORE_CORPUS_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace pae::core {

/// On-disk corpus layout used by the CLI tools (`pae_datagen`,
/// `pae_extract`):
///
///   <dir>/manifest.tsv       category \t language ("ja"|"de")
///   <dir>/pages/<id>.html    one file per product page
///   <dir>/queries.txt        one query per line
///   <dir>/lexicon.txt        tokenizer dictionary, one word per line
///   <dir>/pos_lexicon.tsv    word \t tag
///   <dir>/truth.tsv          optional ground truth:
///                            pid \t attr \t value \t correct \t pair_valid
///   <dir>/aliases.tsv        optional: surface \t canonical
///
/// Tabs and newlines inside values are replaced by spaces on write.

/// Writes `corpus` under `dir` (created if needed).
Status SaveCorpus(const Corpus& corpus, const std::string& dir);

/// The corpus language resources without the pages: what a serving
/// process needs to build an ExtractionEngine around a persisted model.
struct CorpusResources {
  std::string category;
  text::Language language = text::Language::kJa;
  std::vector<std::string> tokenizer_lexicon;
  text::PosLexicon pos_lexicon;
};

/// Reads manifest.tsv + lexicon.txt + pos_lexicon.tsv from `dir` without
/// touching pages/ — O(lexicon) instead of O(corpus), so a daemon can
/// restart in milliseconds against a directory holding millions of
/// pages.
Result<CorpusResources> LoadCorpusResources(const std::string& dir);

/// Reads a corpus previously written by SaveCorpus (or assembled by
/// hand in the same layout).
Result<Corpus> LoadCorpus(const std::string& dir);

/// Page-granular reader over the same on-disk layout, built for the
/// single-pass streaming ingestion (core/ingest.h): `Open` reads only
/// the O(lexicon) resources and lists + sorts the page files; the page
/// bytes are then read one page at a time by `ReadPageHtml`, which is
/// safe to call from many threads at once — each call opens its own
/// descriptor and reads straight into the caller's reused buffer, so
/// parse workers overlap page-file IO with parsing instead of waiting
/// behind LoadCorpus materializing the whole corpus first.
///
/// Page order (and hence page index ↔ product id) is the sorted-path
/// order LoadCorpus uses, so index p here is page p there.
class StreamingCorpusReader {
 public:
  /// Reads manifest/lexicons/queries and lists pages/. Fails like
  /// LoadCorpus does (missing manifest or pages/ directory).
  static Result<StreamingCorpusReader> Open(const std::string& dir);

  const std::string& category() const { return resources_.category; }
  text::Language language() const { return resources_.language; }
  const CorpusResources& resources() const { return resources_; }
  const std::vector<std::string>& query_log() const { return query_log_; }

  size_t page_count() const { return page_paths_.size(); }
  const std::string& product_id(size_t page) const {
    return product_ids_[page];
  }
  /// Sum of on-disk page sizes (for pre-sizing dictionaries).
  uint64_t total_page_bytes() const { return total_page_bytes_; }

  /// Reads page `page`'s HTML into `*html`, reusing its capacity.
  /// Thread-safe: no reader state is touched.
  Status ReadPageHtml(size_t page, std::string* html) const;

 private:
  CorpusResources resources_;
  std::vector<std::string> query_log_;
  std::vector<std::string> page_paths_;
  std::vector<std::string> product_ids_;
  uint64_t total_page_bytes_ = 0;
};

/// Writes the truth sample (truth.tsv + aliases.tsv) under `dir`.
Status SaveTruth(const TruthSample& truth, const std::string& dir);

/// Reads truth.tsv/aliases.tsv from `dir`. The valid-pair set is
/// rebuilt from the correct entries.
Result<TruthSample> LoadTruth(const std::string& dir);

/// Writes triples as TSV: product_id \t attribute \t value.
Status SaveTriples(const std::vector<Triple>& triples,
                   const std::string& path);

/// Reads a triples TSV written by SaveTriples.
Result<std::vector<Triple>> LoadTriples(const std::string& path);

}  // namespace pae::core

#endif  // PAE_CORE_CORPUS_IO_H_
