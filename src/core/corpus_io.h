#ifndef PAE_CORE_CORPUS_IO_H_
#define PAE_CORE_CORPUS_IO_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace pae::core {

/// On-disk corpus layout used by the CLI tools (`pae_datagen`,
/// `pae_extract`):
///
///   <dir>/manifest.tsv       category \t language ("ja"|"de")
///   <dir>/pages/<id>.html    one file per product page
///   <dir>/queries.txt        one query per line
///   <dir>/lexicon.txt        tokenizer dictionary, one word per line
///   <dir>/pos_lexicon.tsv    word \t tag
///   <dir>/truth.tsv          optional ground truth:
///                            pid \t attr \t value \t correct \t pair_valid
///   <dir>/aliases.tsv        optional: surface \t canonical
///
/// Tabs and newlines inside values are replaced by spaces on write.

/// Writes `corpus` under `dir` (created if needed).
Status SaveCorpus(const Corpus& corpus, const std::string& dir);

/// The corpus language resources without the pages: what a serving
/// process needs to build an ExtractionEngine around a persisted model.
struct CorpusResources {
  std::string category;
  text::Language language = text::Language::kJa;
  std::vector<std::string> tokenizer_lexicon;
  text::PosLexicon pos_lexicon;
};

/// Reads manifest.tsv + lexicon.txt + pos_lexicon.tsv from `dir` without
/// touching pages/ — O(lexicon) instead of O(corpus), so a daemon can
/// restart in milliseconds against a directory holding millions of
/// pages.
Result<CorpusResources> LoadCorpusResources(const std::string& dir);

/// Reads a corpus previously written by SaveCorpus (or assembled by
/// hand in the same layout).
Result<Corpus> LoadCorpus(const std::string& dir);

/// Writes the truth sample (truth.tsv + aliases.tsv) under `dir`.
Status SaveTruth(const TruthSample& truth, const std::string& dir);

/// Reads truth.tsv/aliases.tsv from `dir`. The valid-pair set is
/// rebuilt from the correct entries.
Result<TruthSample> LoadTruth(const std::string& dir);

/// Writes triples as TSV: product_id \t attribute \t value.
Status SaveTriples(const std::vector<Triple>& triples,
                   const std::string& path);

/// Reads a triples TSV written by SaveTriples.
Result<std::vector<Triple>> LoadTriples(const std::string& path);

}  // namespace pae::core

#endif  // PAE_CORE_CORPUS_IO_H_
