#include "core/bootstrap.h"

#include "core/ensemble.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/normalize.h"
#include "crf/compiled_corpus.h"
#include "text/negation.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae::core {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kCrf:
      return "crf";
    case ModelType::kBiLstm:
      return "bilstm";
    case ModelType::kEnsembleIntersection:
      return "ensemble-intersect";
    case ModelType::kEnsembleUnion:
      return "ensemble-union";
  }
  return "unknown";
}

std::vector<AttributeValue> PipelineResult::FinalPairs() const {
  std::unordered_set<std::string> seen;
  std::vector<AttributeValue> pairs;
  for (const Triple& t : final_triples()) {
    const std::string key = PairKey(t.attribute, NormalizeValue(t.value));
    if (seen.insert(key).second) {
      pairs.push_back(AttributeValue{t.attribute, t.value});
    }
  }
  return pairs;
}

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {}

std::unique_ptr<text::SequenceTagger> Pipeline::MakeTagger(
    int iteration) const {
  if (config_.model == ModelType::kCrf) {
    return std::make_unique<crf::CrfTagger>(config_.crf);
  }
  lstm::BiLstmOptions options = config_.lstm;
  options.seed = config_.seed * 7919 + static_cast<uint64_t>(iteration);
  if (config_.model == ModelType::kBiLstm) {
    return std::make_unique<lstm::BiLstmTagger>(options);
  }
  const EnsembleMode mode = config_.model == ModelType::kEnsembleIntersection
                                ? EnsembleMode::kIntersection
                                : EnsembleMode::kUnion;
  return std::make_unique<EnsembleTagger>(
      std::make_unique<crf::CrfTagger>(config_.crf),
      std::make_unique<lstm::BiLstmTagger>(options), mode);
}

Result<PipelineResult> Pipeline::Run(const ProcessedCorpus& corpus) {
  return RunImpl(corpus, nullptr);
}

Result<PipelineResult> Pipeline::Run(const IngestedCorpus& ingested) {
  return RunImpl(ingested.corpus, &ingested.candidates);
}

Result<PipelineResult> Pipeline::RunImpl(const ProcessedCorpus& corpus,
                                         const CandidateSet* candidates) {
  if (config_.threads < 0) {
    return Status::InvalidArgument(
        "PipelineConfig.threads must be >= 0 (0 = all hardware threads), "
        "got " + std::to_string(config_.threads));
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer run_timer(metrics.GetHistogram("bootstrap.seconds"));
  const int threads = util::ThreadPool::ResolveThreads(config_.threads);
  util::ThreadPool pool(threads);
  config_.crf.threads = threads;
  config_.semantic.word2vec.threads = threads;

  PipelineResult result;
  result.seed =
      candidates != nullptr
          ? BuildSeedFromCandidates(corpus, *candidates, config_.preprocess)
          : BuildSeed(corpus, config_.preprocess);
  if (result.seed.pairs.empty()) {
    return Status::FailedPrecondition(
        "seed construction produced no <attribute, value> pairs for " +
        corpus.category);
  }

  // ---- training-set generation (Fig. 1 line 5) ----
  DistantSupervisor seed_supervisor(result.seed.pairs);

  struct SentRef {
    size_t page;
    size_t sent;
  };
  std::vector<text::LabeledSequence> labeled;
  std::vector<SentRef> unlabeled;

  // Cumulative triples, keyed for dedup.
  std::unordered_map<std::string, Triple> triples;
  auto add_triple = [&](const std::string& pid, const std::string& attr,
                        const std::string& value) {
    const std::string key = pid + "\t" + attr + "\t" + NormalizeValue(value);
    triples.emplace(key, Triple{pid, attr, value});
  };

  for (const Triple& t : result.seed.table_triples) {
    add_triple(t.product_id, t.attribute, t.value);
  }

  const text::NegationDetector negation(corpus.language);
  auto drop_for_negation = [&](const text::LabeledSequence& sentence) {
    return config_.negation_filtering && negation.IsNegated(sentence.tokens);
  };

  // Distant supervision: label every seed-page sentence against the
  // seed in parallel (each sentence is independent), then fold the
  // results sequentially in corpus order so triples and training
  // sentences accumulate exactly as a serial pass would.
  util::ScopedTimer ds_timer(metrics.GetHistogram("bootstrap.ds.seconds"));
  std::vector<SentRef> all_sents;
  for (size_t p = 0; p < corpus.pages.size(); ++p) {
    for (size_t s = 0; s < corpus.pages[p].sentences.size(); ++s) {
      all_sents.push_back(SentRef{p, s});
    }
  }
  struct LabelOutcome {
    text::LabeledSequence seq;  // labeled copy (seed pages only)
    bool negated = false;
  };
  std::vector<LabelOutcome> label_outcomes(all_sents.size());
  pool.ParallelFor(0, all_sents.size(), 16, [&](size_t i) {
    const SentRef ref = all_sents[i];
    const ProcessedPage& page = corpus.pages[ref.page];
    if (page.tables.empty()) return;
    text::LabeledSequence seq = page.sentences[ref.sent];
    seed_supervisor.Label(&seq);
    label_outcomes[i].negated = drop_for_negation(seq);
    label_outcomes[i].seq = std::move(seq);
  });
  for (size_t i = 0; i < all_sents.size(); ++i) {
    const SentRef ref = all_sents[i];
    const ProcessedPage& page = corpus.pages[ref.page];
    if (page.tables.empty()) {
      unlabeled.push_back(ref);
      continue;
    }
    text::LabeledSequence& seq = label_outcomes[i].seq;
    if (label_outcomes[i].negated) {
      // Keep the sentence as an all-O negative example but produce
      // no triples from it (Definition 3.1).
      seq.labels.assign(seq.tokens.size(), text::kOutsideLabel);
      labeled.push_back(std::move(seq));
      continue;
    }
    for (const text::ValueSpan& span : text::DecodeBioSpans(seq.labels)) {
      std::vector<std::string> value_tokens(
          seq.tokens.begin() + static_cast<long>(span.begin),
          seq.tokens.begin() + static_cast<long>(span.end));
      add_triple(page.product_id, span.attribute,
                 corpus.Detokenize(value_tokens));
    }
    labeled.push_back(std::move(seq));
  }
  result.seed_triples.reserve(triples.size());
  for (const auto& [key, t] : triples) result.seed_triples.push_back(t);
  ds_timer.Stop();
  metrics.GetCounter("bootstrap.ds.labeled_sentences")
      ->Add(static_cast<int64_t>(labeled.size()));
  metrics.GetCounter("bootstrap.ds.unlabeled_sentences")
      ->Add(static_cast<int64_t>(unlabeled.size()));
  metrics.GetCounter("bootstrap.ds.seed_triples")
      ->Add(static_cast<int64_t>(result.seed_triples.size()));

  // Specialized models (§VIII-D) are trained on a balanced set: a
  // global model sees every seed-page sentence, so its rare target
  // attributes drown in all-O negatives; the specialized trainer keeps
  // every sentence carrying a target span plus an equal number of
  // negatives. This is what lets Figs. 7/8 raise per-attribute coverage
  // (at the precision cost §VIII-D reports).
  if (!config_.preprocess.attribute_filter.empty()) {
    std::vector<text::LabeledSequence> positives, negatives;
    for (auto& seq : labeled) {
      bool has_span = false;
      for (const auto& label : seq.labels) {
        if (label != text::kOutsideLabel) {
          has_span = true;
          break;
        }
      }
      (has_span ? positives : negatives).push_back(std::move(seq));
    }
    Rng balance_rng(config_.seed + 17);
    balance_rng.Shuffle(&negatives);
    if (negatives.size() > positives.size()) {
      negatives.resize(positives.size());
    }
    labeled = std::move(positives);
    for (auto& seq : negatives) labeled.push_back(std::move(seq));
  }

  // Known accepted values per attribute (semantic cores grow with the
  // bootstrap).
  std::unordered_map<std::string, std::vector<std::vector<std::string>>>
      known_values;
  std::unordered_set<std::string> known_value_keys;
  std::vector<SeedPair> all_values;  // for multiword merging in word2vec
  for (const SeedPair& pair : result.seed.pairs) {
    const std::string key =
        PairKey(pair.attribute, NormalizeValue(pair.value_display));
    if (known_value_keys.insert(key).second) {
      known_values[pair.attribute].push_back(pair.value_tokens);
      all_values.push_back(pair);
    }
  }

  Rng rng(config_.seed);

  // CRF fast path: the unlabeled sentence set is fixed across all
  // Tagger–Cleaner cycles, so feature extraction happens exactly once
  // here; each retrained tagger only rebinds feature ids (keyed on its
  // generation counter) before the parallel tagging sweep.
  crf::CompiledCorpus crf_cache;
  if (config_.model == ModelType::kCrf && !unlabeled.empty()) {
    std::vector<const text::LabeledSequence*> cache_sents;
    cache_sents.reserve(unlabeled.size());
    for (const SentRef& ref : unlabeled) {
      cache_sents.push_back(&corpus.pages[ref.page].sentences[ref.sent]);
    }
    crf_cache.Build(std::move(cache_sents), config_.crf.features);
  }

  // Sentences labeled by the previous cycle's cleaned tags. Following
  // Fig. 1 line 20 (dataset = clean_ds) this portion is *replaced*
  // every cycle, so a value wrongly accepted once does not poison all
  // later cycles — the loop is self-correcting.
  std::vector<text::LabeledSequence> accepted_labeled;

  // ---- Tagger–Cleaner cycles (Fig. 1 lines 8–22) ----
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    util::ScopedTimer iteration_timer(
        metrics.GetHistogram("bootstrap.iteration.seconds"));
    IterationStats stats;
    stats.iteration = iteration + 1;

    // Train on (a sample of) the labeled dataset: the fixed seed-page
    // sentences plus the previous cycle's cleaned tags.
    std::vector<text::LabeledSequence> train = labeled;
    train.insert(train.end(), accepted_labeled.begin(),
                 accepted_labeled.end());
    if (train.size() > config_.max_train_sentences) {
      rng.Shuffle(&train);
      train.resize(config_.max_train_sentences);
    }
    stats.labeled_sentences = train.size();
    std::unique_ptr<text::SequenceTagger> tagger = MakeTagger(iteration);
    Status train_status = tagger->Train(train);
    if (!train_status.ok()) return train_status;

    const crf::CrfTagger* crf_tagger = nullptr;
    if (crf_cache.built()) {
      auto* ct = static_cast<crf::CrfTagger*>(tagger.get());
      crf_cache.Bind(ct->model(), ct->Generation());
      crf_tagger = ct;
    }

    // Tag every still-unlabeled sentence.
    struct TaggedSentence {
      size_t unlabeled_index;
      std::vector<std::string> labels;
      std::vector<text::ValueSpan> spans;
    };
    std::vector<TaggedSentence> tagged;
    std::unordered_map<std::string, TaggedCandidate> candidate_map;
    std::unordered_map<std::string, std::unordered_set<std::string>>
        candidate_products;

    // Tag sentences on the pool (prediction is read-only on the model),
    // then merge in index order so candidate discovery — and therefore
    // every downstream map and tie-break — is independent of scheduling.
    struct TagOutcome {
      bool kept = false;
      std::vector<std::string> labels;
      std::vector<text::ValueSpan> spans;
    };
    std::vector<TagOutcome> tag_outcomes(unlabeled.size());
    util::ScopedTimer tag_timer(
        metrics.GetHistogram("bootstrap.tag.seconds"));
    pool.ParallelFor(0, unlabeled.size(), 8, [&](size_t u) {
      const SentRef ref = unlabeled[u];
      const ProcessedPage& page = corpus.pages[ref.page];
      const text::LabeledSequence& sentence = page.sentences[ref.sent];
      if (drop_for_negation(sentence)) return;
      text::SequenceTagger::ScoredPrediction scored;
      if (crf_tagger != nullptr) {
        thread_local crf::CompiledSequence compiled;
        crf_cache.Materialize(u, &compiled);
        scored = crf_tagger->PredictScored(compiled);
      } else {
        scored = tagger->PredictScored(sentence);
      }
      std::vector<text::ValueSpan> spans =
          text::DecodeBioSpans(scored.labels);
      if (config_.min_span_confidence > 0) {
        std::vector<text::ValueSpan> confident;
        for (const text::ValueSpan& span : spans) {
          double min_conf = 1.0;
          for (size_t k = span.begin; k < span.end; ++k) {
            min_conf = std::min(min_conf, scored.confidence[k]);
          }
          if (min_conf >= config_.min_span_confidence) {
            confident.push_back(span);
          }
        }
        spans = std::move(confident);
      }
      if (spans.empty()) return;
      tag_outcomes[u].kept = true;
      tag_outcomes[u].labels = std::move(scored.labels);
      tag_outcomes[u].spans = std::move(spans);
    });
    tag_timer.Stop();

    for (size_t u = 0; u < unlabeled.size(); ++u) {
      if (!tag_outcomes[u].kept) continue;
      const SentRef ref = unlabeled[u];
      const ProcessedPage& page = corpus.pages[ref.page];
      const text::LabeledSequence& sentence = page.sentences[ref.sent];
      std::vector<std::string>& labels = tag_outcomes[u].labels;
      std::vector<text::ValueSpan>& spans = tag_outcomes[u].spans;
      for (const text::ValueSpan& span : spans) {
        std::vector<std::string> value_tokens(
            sentence.tokens.begin() + static_cast<long>(span.begin),
            sentence.tokens.begin() + static_cast<long>(span.end));
        const std::string display = corpus.Detokenize(value_tokens);
        const std::string key =
            PairKey(span.attribute, NormalizeValue(display));
        auto [it, inserted] = candidate_map.emplace(key, TaggedCandidate{});
        if (inserted) {
          it->second.attribute = span.attribute;
          it->second.value_display = display;
          it->second.value_tokens = value_tokens;
        }
        if (candidate_products[key].insert(page.product_id).second) {
          it->second.item_count += 1;
        }
      }
      tagged.push_back(TaggedSentence{u, std::move(labels), std::move(spans)});
    }

    std::vector<TaggedCandidate> candidates;
    candidates.reserve(candidate_map.size());
    for (auto& [key, c] : candidate_map) candidates.push_back(std::move(c));
    std::sort(candidates.begin(), candidates.end(),
              [](const TaggedCandidate& a, const TaggedCandidate& b) {
                if (a.item_count != b.item_count) {
                  return a.item_count > b.item_count;
                }
                if (a.attribute != b.attribute) return a.attribute < b.attribute;
                return a.value_display < b.value_display;
              });
    stats.candidate_values = candidates.size();

    // ---- cleaning ----
    util::ScopedTimer clean_timer(
        metrics.GetHistogram("bootstrap.clean.seconds"));
    if (config_.syntactic_cleaning) {
      candidates =
          ApplyVetoRules(std::move(candidates), config_.veto, &stats.cleaning);
    } else {
      stats.cleaning.input += candidates.size();
    }
    if (config_.semantic_cleaning && !candidates.empty()) {
      // Merge list: known values plus this iteration's candidates.
      std::vector<SeedPair> merge_values = all_values;
      for (const TaggedCandidate& c : candidates) {
        SeedPair pair;
        pair.attribute = c.attribute;
        pair.value_display = c.value_display;
        pair.value_tokens = c.value_tokens;
        merge_values.push_back(std::move(pair));
      }
      SemanticCleaner::Config sem = config_.semantic;
      sem.word2vec.seed =
          config_.seed * 104729 + static_cast<uint64_t>(iteration);
      SemanticCleaner cleaner(sem);
      Status sem_status = cleaner.Train(corpus, merge_values);
      if (sem_status.ok()) {
        candidates = cleaner.Filter(candidates, known_values, &stats.cleaning);
      }
      // A failed embedding training (tiny corpora) degrades gracefully
      // to no semantic filtering.
    }
    clean_timer.Stop();
    stats.accepted_values = candidates.size();

    // Accepted (attribute, value) keys.
    std::unordered_set<std::string> accepted;
    for (const TaggedCandidate& c : candidates) {
      accepted.insert(PairKey(c.attribute, NormalizeValue(c.value_display)));
    }

    // ---- rebuild the cleaned dataset and the triple store ----
    // (Fig. 1 line 20: dataset = clean_ds — the tagged portion is
    // replaced, not accreted.)
    accepted_labeled.clear();
    std::unordered_map<std::string, Triple> iter_triples = triples;
    auto add_iter_triple = [&](const std::string& pid,
                               const std::string& attr,
                               const std::string& value) {
      const std::string key =
          pid + "\t" + attr + "\t" + NormalizeValue(value);
      iter_triples.emplace(key, Triple{pid, attr, value});
    };

    for (const TaggedSentence& ts : tagged) {
      const SentRef ref = unlabeled[ts.unlabeled_index];
      const ProcessedPage& page = corpus.pages[ref.page];
      const text::LabeledSequence& sentence = page.sentences[ref.sent];
      std::vector<std::string> final_labels(sentence.tokens.size(),
                                            text::kOutsideLabel);
      bool any = false;
      for (const text::ValueSpan& span : ts.spans) {
        std::vector<std::string> value_tokens(
            sentence.tokens.begin() + static_cast<long>(span.begin),
            sentence.tokens.begin() + static_cast<long>(span.end));
        const std::string display = corpus.Detokenize(value_tokens);
        const std::string key =
            PairKey(span.attribute, NormalizeValue(display));
        if (accepted.count(key) == 0) continue;
        any = true;
        final_labels[span.begin] = text::BeginLabel(span.attribute);
        for (size_t k = span.begin + 1; k < span.end; ++k) {
          final_labels[k] = text::InsideLabel(span.attribute);
        }
        add_iter_triple(page.product_id, span.attribute, display);
        if (known_value_keys.insert(key).second) {
          known_values[span.attribute].push_back(value_tokens);
          SeedPair pair;
          pair.attribute = span.attribute;
          pair.value_display = display;
          pair.value_tokens = value_tokens;
          all_values.push_back(std::move(pair));
        }
      }
      if (any) {
        text::LabeledSequence seq = sentence;
        seq.labels = std::move(final_labels);
        accepted_labeled.push_back(std::move(seq));
      }
    }

    stats.new_triples = iter_triples.size() - triples.size();
    stats.cumulative_triples = iter_triples.size();

    // Per-iteration telemetry: ordered series mirror IterationStats so
    // the run report tells the full growth story, and the cleaning
    // decisions previously visible only in PipelineResult also reach
    // the global counters.
    metrics.GetSeries("bootstrap.train_sentences")
        ->Append(static_cast<double>(stats.labeled_sentences));
    metrics.GetSeries("bootstrap.candidates")
        ->Append(static_cast<double>(stats.candidate_values));
    metrics.GetSeries("bootstrap.accepted")
        ->Append(static_cast<double>(stats.accepted_values));
    metrics.GetSeries("bootstrap.new_triples")
        ->Append(static_cast<double>(stats.new_triples));
    metrics.GetSeries("bootstrap.triples_total")
        ->Append(static_cast<double>(stats.cumulative_triples));
    metrics.GetSeries("bootstrap.vetoed")
        ->Append(static_cast<double>(stats.cleaning.vetoed()));
    metrics.GetSeries("bootstrap.semantic_removed")
        ->Append(static_cast<double>(stats.cleaning.semantic_removed));
    RecordCleaningMetrics(stats.cleaning);

    result.iteration_stats.push_back(stats);

    std::vector<Triple> snapshot;
    snapshot.reserve(iter_triples.size());
    for (const auto& [key, t] : iter_triples) snapshot.push_back(t);
    result.triples_after.push_back(std::move(snapshot));

    PAE_LOG(INFO) << corpus.category << " iter " << stats.iteration << " ["
                  << ModelTypeName(config_.model)
                  << "] candidates=" << stats.candidate_values
                  << " accepted=" << stats.accepted_values
                  << " triples=" << stats.cumulative_triples;
  }

  result.known_pair_keys.assign(known_value_keys.begin(),
                                known_value_keys.end());
  std::sort(result.known_pair_keys.begin(), result.known_pair_keys.end());

  if (config_.train_final_model) {
    std::vector<text::LabeledSequence> train = labeled;
    train.insert(train.end(), accepted_labeled.begin(),
                 accepted_labeled.end());
    if (train.size() > config_.max_train_sentences) {
      rng.Shuffle(&train);
      train.resize(config_.max_train_sentences);
    }
    std::unique_ptr<text::SequenceTagger> final_tagger =
        MakeTagger(config_.iterations);
    Status trained = final_tagger->Train(train);
    if (!trained.ok()) return trained;
    result.final_tagger = std::move(final_tagger);
  }
  return result;
}

}  // namespace pae::core
