#ifndef PAE_CORE_APPLY_H_
#define PAE_CORE_APPLY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/cleaning.h"
#include "core/document.h"
#include "core/types.h"
#include "text/sequence_tagger.h"

namespace pae::core {

/// Counters describing one ExtractWithModel pass. Filled when
/// ApplyOptions::stats is set; the same numbers also feed the global
/// metrics registry under `apply.*` / `cleaning.*`.
struct ApplyStats {
  int64_t sentences = 0;           ///< sentences considered
  int64_t negation_dropped = 0;    ///< sentences skipped as negated
  int64_t spans = 0;               ///< spans kept after the confidence bar
  int64_t confidence_dropped = 0;  ///< spans below min_span_confidence
  int64_t candidates = 0;          ///< distinct <attribute, value> pairs
  int64_t candidates_vetoed = 0;   ///< pairs removed by the veto rules
  int64_t triples = 0;             ///< triples emitted
  CleaningStats cleaning;          ///< per-rule veto breakdown
};

/// Inference-time extraction: applies an already-trained tagger to a
/// (possibly new) corpus without running the bootstrap. This is the
/// production "apply" phase — the bootstrap trains and calibrates on a
/// reference crawl; fresh merchant pages are then tagged with the
/// persisted model.
struct ApplyOptions {
  /// Drop spans whose minimum posterior confidence is below this.
  double min_span_confidence = 0.0;
  /// Drop spans in negated sentences (Definition 3.1).
  bool negation_filtering = true;
  /// Apply the four §V-C veto rules to the extracted candidates.
  bool veto_rules = true;
  VetoConfig veto;
  /// When non-empty, only <attribute, value> pairs present in this set
  /// are emitted (keys via PairKey(attribute, NormalizeValue(value))) —
  /// the "known catalog values" deployment mode.
  std::unordered_set<std::string> accepted_pairs;
  /// Threads for per-sentence tagging (0 = all hardware threads,
  /// negative clamps to 1). Output is byte-identical for every thread
  /// count: predictions are collected per sentence slot and merged in
  /// corpus order.
  int threads = 0;
  /// When non-null, receives the pass's telemetry (overwritten, not
  /// accumulated). Purely observational: never affects the output.
  ApplyStats* stats = nullptr;
};

/// Tags every sentence of every page and returns the surviving triples.
std::vector<Triple> ExtractWithModel(const text::SequenceTagger& tagger,
                                     const ProcessedCorpus& corpus,
                                     const ApplyOptions& options);

}  // namespace pae::core

#endif  // PAE_CORE_APPLY_H_
