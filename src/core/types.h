#ifndef PAE_CORE_TYPES_H_
#define PAE_CORE_TYPES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace pae::core {

/// One merchant product page: the system's only per-product input is the
/// page HTML (title + description + optional spec table), per §II.
struct ProductPage {
  std::string product_id;
  std::string html;
};

/// A category-level extraction corpus: the inputs of Figure 2 — product
/// web pages, the users' search logs, plus the two language resources
/// the paper treats as given (tokenizer lexicon, PoS lexicon).
struct Corpus {
  std::string category;
  text::Language language = text::Language::kJa;
  std::vector<ProductPage> pages;
  std::vector<std::string> query_log;

  /// Dictionary for the CJK tokenizer (ignored for Latin languages).
  std::vector<std::string> tokenizer_lexicon;
  /// Word→tag overrides for the PoS tagger (units, particles, ...).
  text::PosLexicon pos_lexicon;
};

/// An extracted <product, attribute, value> triple (Definition 3.1).
struct Triple {
  std::string product_id;
  std::string attribute;
  std::string value;

  bool operator==(const Triple& o) const {
    return product_id == o.product_id && attribute == o.attribute &&
           value == o.value;
  }
};

/// An <attribute, value> pair (the seed unit of §V-A).
struct AttributeValue {
  std::string attribute;
  std::string value;

  bool operator==(const AttributeValue& o) const {
    return attribute == o.attribute && value == o.value;
  }
};

/// One human-annotated entry of the truth sample (§VI-B): annotators
/// judged whether the <attribute, value> pair is a valid association and
/// whether the full triple is correct for the product.
struct TruthEntry {
  Triple triple;
  bool triple_correct = true;
  bool pair_valid = true;
};

/// The evaluation ground truth of one category. Because the sample was
/// produced by running the system and judging its outputs, it carries
/// system-facing surface attribute names; `attribute_aliases` maps every
/// surface form to its canonical attribute (the knowledge the human
/// annotators applied when judging).
struct TruthSample {
  std::vector<TruthEntry> entries;
  /// surface attribute name → canonical attribute.
  std::unordered_map<std::string, std::string> attribute_aliases;

  /// Valid <attribute, value> associations: keys built with
  /// `PairKey(canonical_attribute, NormalizeValue(value))`. Used for the
  /// pair-level judgement of Table I.
  std::unordered_set<std::string> valid_pairs;

  /// Normalizes a surface attribute name. Unknown names return
  /// themselves.
  const std::string& Canonical(const std::string& surface) const {
    auto it = attribute_aliases.find(surface);
    return it == attribute_aliases.end() ? surface : it->second;
  }
};

}  // namespace pae::core

#endif  // PAE_CORE_TYPES_H_
