#include "core/ingest.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/normalize.h"
#include "html/stream_scanner.h"
#include "text/fused_segmenter.h"
#include "util/concurrent_interner.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace pae::core {

namespace {

using Handle = util::ConcurrentStringInterner::Handle;

/// One table-entry candidate occurrence harvested while the page was
/// cache-hot: the pair-interner handle plus the table coordinates the
/// serial fold reads the display strings back from.
struct PairOccurrence {
  Handle handle = 0;
  uint32_t table = 0;
  uint32_t entry = 0;
};

/// Everything a parse worker produces for one page besides the
/// ProcessedPage itself.
struct PageHarvest {
  std::vector<PairOccurrence> occurrences;
  /// Token handles deduplicated within the page, in first-occurrence
  /// order. Concatenated page-major these reproduce the global
  /// first-occurrence order a serial token pass would intern in, which
  /// is exactly what Canonicalize needs.
  std::vector<Handle> tokens;
};

/// Per-page token-handle dedup set: open addressing with a generation
/// stamp, so starting a new page is a counter bump instead of an
/// unordered_set::clear, and the hot insert is one probe chain with no
/// allocation.
class PageTokenSet {
 public:
  void BeginPage() {
    if (slots_.empty()) slots_.assign(1024, Slot{});
    ++generation_;
    count_ = 0;
    if (generation_ == 0) {  // stamp wrap: invalidate everything
      std::fill(slots_.begin(), slots_.end(), Slot{});
      generation_ = 1;
    }
  }

  /// True if `handle` was not yet seen on this page.
  bool Insert(Handle handle) {
    if ((count_ + 1) * 2 > slots_.size()) Grow();
    const size_t mask = slots_.size() - 1;
    size_t idx = Mix(handle) & mask;
    while (true) {
      Slot& slot = slots_[idx];
      if (slot.generation != generation_) {
        slot.handle = handle;
        slot.generation = generation_;
        ++count_;
        return true;
      }
      if (slot.handle == handle) return false;
      idx = (idx + 1) & mask;
    }
  }

 private:
  struct Slot {
    Handle handle = 0;
    uint32_t generation = 0;
  };

  static size_t Mix(Handle handle) {
    return static_cast<size_t>(handle * uint64_t{0x9E3779B97F4A7C15});
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.generation != generation_) continue;
      size_t idx = Mix(slot.handle) & mask;
      while (slots_[idx].generation == generation_) idx = (idx + 1) & mask;
      slots_[idx] = slot;
    }
  }

  std::vector<Slot> slots_;
  uint32_t generation_ = 0;
  size_t count_ = 0;
};

/// Reused per-thread scratch so the per-page hot path allocates only
/// what it keeps. The scanner and segmenter buffers are the reason the
/// streaming arm's steady state is almost allocation-free per page.
struct WorkerScratch {
  std::string pair_key;
  PageTokenSet page_tokens;
  html::StreamScanner scanner;
  text::FusedSegmenter::Scratch segment;
  /// Memo entries parallel to the current page's sentences; their
  /// cookies carry the per-token interner handles (see ParsePage).
  std::vector<text::FusedSegmenter::CacheEntry*> entries;
};

struct SizeHints {
  size_t tokens = 0;
  size_t pairs = 0;
};

/// The ingest pipeline is CPU-bound, so it clamps its worker count to
/// the hardware: oversubscribing adds scheduler churn, interner CAS
/// contention, and duplicated per-thread scratch state without buying
/// any parallelism. Purely a scheduling decision — the output is
/// byte-identical at every worker count (tests/streaming_ingest_test.cc).
int IngestWorkers(int configured) {
  const int resolved = util::ThreadPool::ResolveThreads(configured);
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) return resolved;
  return std::min(resolved, static_cast<int>(hardware));
}

/// Distinct id per ingest run, never 0. Worker scratch (and with it the
/// segmenter memo) is thread_local, so it outlives the per-run interners
/// whose handles the memo cookies hold; comparing the stored generation
/// against the current run's id is what keeps a later run from reading
/// stale handles.
uint64_t NextIngestGeneration() {
  static std::atomic<uint64_t> generation{0};
  return generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Derives interner pre-sizes from the corpus byte count. Distinct
/// tokens are bounded by total tokens, and a token costs well over 16
/// page bytes once markup overhead is counted (the table tolerates a
/// further 1.5× past the estimate before its load-factor guard);
/// a dictionary-table entry costs ≥ ~30 bytes of markup. Corpora with
/// pathological dictionaries can override via IngestOptions.
SizeHints DeriveSizeHints(uint64_t total_page_bytes,
                          const IngestOptions& options) {
  SizeHints hints;
  hints.tokens = options.expected_distinct_tokens != 0
                     ? options.expected_distinct_tokens
                     : static_cast<size_t>(total_page_bytes / 16) + 4096;
  hints.pairs = options.expected_distinct_pairs != 0
                    ? options.expected_distinct_pairs
                    : static_cast<size_t>(total_page_bytes / 32) + 1024;
  return hints;
}

/// The fused per-page pass: one streaming scan of the raw HTML (no DOM,
/// html::StreamScanner), one decode of the page text with fused
/// sentence/token/tag state machines (text::FusedSegmenter), plus token
/// interning and candidate harvesting while the page is still in cache.
/// Outputs are byte-identical to the barrier pipeline's
/// ParseHtml → ExtractText/ExtractDictionaryTables → SplitSentences →
/// Tokenize → Tag chain; both fused components carry differential tests
/// against the modular path.
void ParsePage(const std::string& html, const std::string& product_id,
               const text::FusedSegmenter& segmenter, uint64_t generation,
               util::ConcurrentStringInterner* token_interner,
               util::ConcurrentStringInterner* pair_interner,
               ProcessedPage* processed, PageHarvest* harvest,
               WorkerScratch* scratch) {
  processed->product_id = product_id;

  scratch->scanner.Scan(html);
  processed->tables = std::move(scratch->scanner.tables());
  scratch->entries.clear();
  segmenter.Segment(scratch->scanner.text(), &processed->sentences,
                    &scratch->segment, &scratch->entries);

  // Token interning, memoized per distinct sentence: the memo entry's
  // cookie holds this run's interner handles, so a repeated sentence
  // costs only the per-page dedup probes. A generation mismatch means
  // the cookie belongs to an earlier run's interner and is refilled.
  scratch->page_tokens.BeginPage();
  for (size_t s = 0; s < processed->sentences.size(); ++s) {
    const text::LabeledSequence& seq = processed->sentences[s];
    text::FusedSegmenter::CacheEntry* entry = scratch->entries[s];
    if (entry != nullptr && entry->cookie_generation == generation) {
      for (const uint64_t cookie : entry->cookie) {
        const Handle handle = static_cast<Handle>(cookie);
        if (scratch->page_tokens.Insert(handle)) {
          harvest->tokens.push_back(handle);
        }
      }
      continue;
    }
    if (entry != nullptr) {
      entry->cookie.clear();
      entry->cookie.reserve(seq.tokens.size());
    }
    for (const std::string& token : seq.tokens) {
      const Handle handle = token_interner->Intern(token);
      if (entry != nullptr) entry->cookie.push_back(handle);
      if (scratch->page_tokens.Insert(handle)) {
        harvest->tokens.push_back(handle);
      }
    }
    if (entry != nullptr) entry->cookie_generation = generation;
  }

  for (size_t t = 0; t < processed->tables.size(); ++t) {
    const auto& entries = processed->tables[t].entries;
    for (size_t e = 0; e < entries.size(); ++e) {
      const auto& [name, value] = entries[e];
      if (name.empty() || value.empty()) continue;
      scratch->pair_key.assign(name);
      scratch->pair_key.push_back('\t');
      AppendNormalizedValue(value, &scratch->pair_key);
      harvest->occurrences.push_back(
          PairOccurrence{pair_interner->Intern(scratch->pair_key),
                         static_cast<uint32_t>(t), static_cast<uint32_t>(e)});
    }
  }
}

/// The serial post-join fold: canonicalizes both interners in
/// page-major order and materializes the CandidateSet and Vocab so they
/// are byte-identical to the barrier pipeline's outputs at every thread
/// count.
void FoldHarvests(const std::vector<PageHarvest>& harvests,
                  util::ConcurrentStringInterner* token_interner,
                  util::ConcurrentStringInterner* pair_interner,
                  IngestedCorpus* out) {
  // Candidate pairs. Canonical id = first occurrence in page-major
  // order, which is the insertion order DiscoverCandidates' map sees.
  std::vector<Handle> order;
  size_t total_occurrences = 0;
  for (const PageHarvest& harvest : harvests) {
    total_occurrences += harvest.occurrences.size();
  }
  order.reserve(total_occurrences);
  for (const PageHarvest& harvest : harvests) {
    for (const PairOccurrence& occurrence : harvest.occurrences) {
      order.push_back(occurrence.handle);
    }
  }
  pair_interner->Canonicalize(order);

  out->candidates.pairs.assign(pair_interner->size(), CandidatePair{});
  for (size_t p = 0; p < harvests.size(); ++p) {
    const ProcessedPage& page = out->corpus.pages[p];
    for (const PairOccurrence& occurrence : harvests[p].occurrences) {
      CandidatePair& pair =
          out->candidates.pairs[static_cast<size_t>(
              pair_interner->id(occurrence.handle))];
      if (pair.count == 0) {
        // First page-major occurrence owns the display strings, exactly
        // like the first map insertion in DiscoverCandidates.
        const auto& entry = page.tables[occurrence.table].entries[occurrence.entry];
        pair.attribute = entry.first;
        pair.value = entry.second;
      }
      pair.count += 1;
      pair.product_ids.push_back(page.product_id);
    }
  }
  // Same ordering as DiscoverCandidates. The comparator is total here:
  // distinct keys imply distinct (attribute, normalized-value), and the
  // stored display value normalizes to its key's value component, so no
  // two pairs tie on (count, attribute, value).
  std::sort(out->candidates.pairs.begin(), out->candidates.pairs.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.attribute != b.attribute) return a.attribute < b.attribute;
              return a.value < b.value;
            });

  // Token vocabulary. Per-page first-occurrence lists concatenated
  // page-major preserve the global first-occurrence order, so GetOrAdd
  // over the canonical keys equals a serial GetOrAdd per token
  // (including the "<unk>" dedup against the constructor sentinel).
  order.clear();
  for (const PageHarvest& harvest : harvests) {
    order.insert(order.end(), harvest.tokens.begin(), harvest.tokens.end());
  }
  token_interner->Canonicalize(order);
  out->token_vocab.Reserve(token_interner->size() + 1);
  for (size_t id = 0; id < token_interner->size(); ++id) {
    out->token_vocab.GetOrAdd(
        token_interner->key_for_id(static_cast<int32_t>(id)));
  }
}

void RecordMetrics(const IngestedCorpus& out,
                   const util::ConcurrentStringInterner& token_interner) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  int64_t sentences = 0, tables = 0;
  for (const ProcessedPage& page : out.corpus.pages) {
    sentences += static_cast<int64_t>(page.sentences.size());
    tables += static_cast<int64_t>(page.tables.size());
  }
  metrics.GetCounter("preprocess.pages")
      ->Add(static_cast<int64_t>(out.corpus.pages.size()));
  metrics.GetCounter("preprocess.sentences")->Add(sentences);
  metrics.GetCounter("preprocess.tables")->Add(tables);
  metrics.GetCounter("ingest.distinct_tokens")
      ->Add(static_cast<int64_t>(token_interner.size()));
  metrics.GetCounter("ingest.candidate_pairs")
      ->Add(static_cast<int64_t>(out.candidates.pairs.size()));
}

}  // namespace

IngestedCorpus IngestCorpus(const Corpus& corpus,
                            const IngestOptions& options) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer timer(metrics.GetHistogram("ingest.seconds"));

  IngestedCorpus out;
  out.corpus.category = corpus.category;
  out.corpus.language = corpus.language;
  out.corpus.query_log = corpus.query_log;
  out.corpus.tokenizer =
      text::MakeTokenizer(corpus.language, corpus.tokenizer_lexicon);
  out.corpus.pos_tagger = std::make_unique<text::PosTagger>(
      corpus.language, corpus.pos_lexicon);
  out.corpus.pages.resize(corpus.pages.size());

  uint64_t total_bytes = 0;
  for (const ProductPage& page : corpus.pages) total_bytes += page.html.size();
  const SizeHints hints = DeriveSizeHints(total_bytes, options);
  util::ConcurrentStringInterner token_interner(hints.tokens);
  util::ConcurrentStringInterner pair_interner(hints.pairs);

  const text::FusedSegmenter segmenter(corpus.language,
                                       corpus.tokenizer_lexicon,
                                       corpus.pos_lexicon);
  std::vector<PageHarvest> harvests(corpus.pages.size());
  const uint64_t generation = NextIngestGeneration();
  util::ThreadPool pool(IngestWorkers(options.threads));
  pool.ParallelFor(0, corpus.pages.size(), 1, [&](size_t p) {
    thread_local WorkerScratch scratch;
    ParsePage(corpus.pages[p].html, corpus.pages[p].product_id, segmenter,
              generation, &token_interner, &pair_interner,
              &out.corpus.pages[p], &harvests[p], &scratch);
  });

  FoldHarvests(harvests, &token_interner, &pair_interner, &out);
  RecordMetrics(out, token_interner);
  return out;
}

Result<IngestedCorpus> IngestCorpusDir(const std::string& dir,
                                       const IngestOptions& options) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer timer(metrics.GetHistogram("ingest.seconds"));

  Result<StreamingCorpusReader> reader_result = StreamingCorpusReader::Open(dir);
  if (!reader_result.ok()) return reader_result.status();
  const StreamingCorpusReader& reader = reader_result.value();

  IngestedCorpus out;
  out.corpus.category = reader.category();
  out.corpus.language = reader.language();
  out.corpus.query_log = reader.query_log();
  out.corpus.tokenizer = text::MakeTokenizer(
      reader.language(), reader.resources().tokenizer_lexicon);
  out.corpus.pos_tagger = std::make_unique<text::PosTagger>(
      reader.language(), reader.resources().pos_lexicon);
  out.corpus.pages.resize(reader.page_count());

  const SizeHints hints = DeriveSizeHints(reader.total_page_bytes(), options);
  util::ConcurrentStringInterner token_interner(hints.tokens);
  util::ConcurrentStringInterner pair_interner(hints.pairs);

  const text::FusedSegmenter segmenter(reader.language(),
                                       reader.resources().tokenizer_lexicon,
                                       reader.resources().pos_lexicon);
  std::vector<PageHarvest> harvests(reader.page_count());
  std::vector<Status> page_status(reader.page_count());
  const uint64_t generation = NextIngestGeneration();
  util::ThreadPool pool(IngestWorkers(options.threads));
  pool.ParallelFor(0, reader.page_count(), 1, [&](size_t p) {
    thread_local WorkerScratch scratch;
    thread_local std::string html;
    Status status = reader.ReadPageHtml(p, &html);
    if (!status.ok()) {
      page_status[p] = std::move(status);
      return;
    }
    ParsePage(html, reader.product_id(p), segmenter, generation,
              &token_interner, &pair_interner, &out.corpus.pages[p],
              &harvests[p], &scratch);
  });
  // Lowest failing page wins, like ThreadPool's own exception rule.
  for (Status& status : page_status) {
    if (!status.ok()) return std::move(status);
  }

  FoldHarvests(harvests, &token_interner, &pair_interner, &out);
  RecordMetrics(out, token_interner);
  return out;
}

}  // namespace pae::core
