#ifndef PAE_CORE_INGEST_H_
#define PAE_CORE_INGEST_H_

#include <string>

#include "core/corpus_io.h"
#include "core/document.h"
#include "core/preprocess.h"
#include "core/types.h"
#include "text/vocab.h"
#include "util/status.h"

namespace pae::core {

/// Everything one streaming pass over the pages produces. The barrier
/// pipeline computes the same three artifacts in four separate phases
/// (LoadCorpus → ProcessCorpus → DiscoverCandidates → a serial vocab
/// fold); the contract here is byte-equality with that path:
///
///   * `corpus`      == ProcessCorpus(LoadCorpus(dir)) field for field,
///   * `candidates`  == DiscoverCandidates(corpus),
///   * `token_vocab` == Vocab built by GetOrAdd over every token in
///                      page-major order,
///
/// at every thread count (tests/streaming_ingest_test.cc holds all
/// three to memcmp-level equality at 1/4/8 threads).
struct IngestedCorpus {
  ProcessedCorpus corpus;
  CandidateSet candidates;
  /// Corpus-token dictionary in page-major first-occurrence order
  /// (id 0 = "<unk>") — the live vocabulary the incremental-bootstrap
  /// arc extends as new merchant pages stream in.
  text::Vocab token_vocab;
};

struct IngestOptions {
  /// Parse workers (0 = all hardware threads; negative clamps to 1).
  int threads = 1;
  /// Pre-size hints for the concurrent dictionaries; 0 derives both
  /// from the corpus byte size. The tables carry a load-factor guard,
  /// not growth — see util/concurrent_interner.h.
  size_t expected_distinct_tokens = 0;
  size_t expected_distinct_pairs = 0;
};

/// Single-pass ingestion of an in-memory corpus: every worker parses,
/// tokenizes, PoS-tags, harvests table candidates, and interns tokens
/// for one page while that page is cache-hot, instead of the barrier
/// pipeline's one-artifact-per-phase sweeps. Candidate keys and tokens
/// go through two ConcurrentStringInterners; after the workers join,
/// one serial page-major fold canonicalizes the handles, so the output
/// is byte-identical to the barrier path at every thread count.
IngestedCorpus IngestCorpus(const Corpus& corpus,
                            const IngestOptions& options);

/// Streaming ingestion from disk: pages are read one at a time by the
/// parse workers themselves (StreamingCorpusReader::ReadPageHtml), so
/// page-file IO overlaps parsing and the raw corpus is never
/// materialized in memory. Output is byte-identical to
/// IngestCorpus(LoadCorpus(dir)).
Result<IngestedCorpus> IngestCorpusDir(const std::string& dir,
                                       const IngestOptions& options);

}  // namespace pae::core

#endif  // PAE_CORE_INGEST_H_
