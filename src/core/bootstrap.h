#ifndef PAE_CORE_BOOTSTRAP_H_
#define PAE_CORE_BOOTSTRAP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cleaning.h"
#include "core/document.h"
#include "core/eval.h"
#include "core/ingest.h"
#include "core/preprocess.h"
#include "core/types.h"
#include "crf/crf_tagger.h"
#include "lstm/bilstm_tagger.h"
#include "util/status.h"

namespace pae::core {

/// The two model families of §VI-D plus their combinations (the
/// paper's §IX future work: "combining different approaches").
enum class ModelType {
  kCrf,
  kBiLstm,
  kEnsembleIntersection,  // CRF ∩ BiLSTM: precision-first
  kEnsembleUnion,         // CRF ∪ BiLSTM: coverage-first
};

const char* ModelTypeName(ModelType type);

/// Full configuration of one pipeline run. The boolean switches map to
/// the ablation rows of Table IV: `syntactic_cleaning` ("synt"),
/// `semantic_cleaning` ("sem"), `preprocess.enable_diversification`
/// ("div").
struct PipelineConfig {
  ModelType model = ModelType::kCrf;
  /// Bootstrap stopping criterion: number of Tagger–Cleaner cycles
  /// (§V: 5 in all experiments).
  int iterations = 5;
  bool syntactic_cleaning = true;
  bool semantic_cleaning = true;
  /// Definition 3.1: value mentions inside negated sentences ("does not
  /// include ...") must not produce triples. Drops spans found in
  /// sentences the NegationDetector flags.
  bool negation_filtering = true;

  PreprocessConfig preprocess;
  VetoConfig veto;
  SemanticCleaner::Config semantic;
  crf::CrfOptions crf;
  lstm::BiLstmOptions lstm;

  /// Minimum model confidence (posterior of the emitted labels,
  /// minimum over the span) for a tagged span to become a candidate.
  /// 0 keeps everything; raising it trades coverage for precision —
  /// the business dial of §II.
  double min_span_confidence = 0.0;

  /// Train one additional tagger on the final dataset after the last
  /// cycle and expose it in PipelineResult::final_tagger for
  /// persistence / the apply phase (core/apply.h).
  bool train_final_model = false;

  /// Training-set cap per iteration (uniform sample) to bound cost.
  size_t max_train_sentences = 4000;
  uint64_t seed = 99;

  /// Worker threads for the hot paths (CRF gradient accumulation,
  /// sentence tagging, distant-supervision labeling). 0 = all hardware
  /// threads; negative values are rejected by Pipeline::Run with an
  /// InvalidArgument Status. Results are bit-identical for every thread
  /// count — parallel work is either index-sharded with an ordered merge
  /// or embarrassingly parallel with order-preserving collection.
  int threads = 0;
};

/// Telemetry of one Tagger–Cleaner cycle.
struct IterationStats {
  int iteration = 0;
  size_t labeled_sentences = 0;   // training-set size for this cycle
  size_t candidate_values = 0;    // distinct values the tagger proposed
  size_t accepted_values = 0;     // after cleaning
  size_t new_triples = 0;
  size_t cumulative_triples = 0;
  CleaningStats cleaning;
};

/// The output of a full run: the seed, the triples after the seed stage,
/// and the cumulative triples after every iteration (for the
/// across-iteration figures).
struct PipelineResult {
  Seed seed;
  std::vector<Triple> seed_triples;
  std::vector<IterationStats> iteration_stats;
  /// triples_after[i] = cumulative triples after iteration i+1.
  std::vector<std::vector<Triple>> triples_after;

  /// Deployable tagger trained on the final dataset (only when
  /// PipelineConfig::train_final_model is set).
  std::shared_ptr<text::SequenceTagger> final_tagger;
  /// PairKey(attribute, normalized value) of every value the bootstrap
  /// accepted — the "known catalog values" set for the apply phase.
  std::vector<std::string> known_pair_keys;

  const std::vector<Triple>& final_triples() const {
    return triples_after.empty() ? seed_triples : triples_after.back();
  }

  /// Distinct <attribute, value> pairs among the final triples.
  std::vector<AttributeValue> FinalPairs() const;
};

/// End-to-end bootstrapping extractor (Fig. 1 / Fig. 2): seed → (tag →
/// clean → extend)* for `iterations` cycles.
class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Runs the full algorithm on a preprocessed corpus.
  Result<PipelineResult> Run(const ProcessedCorpus& corpus);

  /// Runs on a streaming-ingested corpus: the candidate set harvested
  /// during the parse pass feeds seed construction directly, skipping
  /// the DiscoverCandidates re-walk. Byte-identical results to
  /// Run(ingested.corpus) — the harvest reproduces DiscoverCandidates
  /// exactly (see core/ingest.h).
  Result<PipelineResult> Run(const IngestedCorpus& ingested);

 private:
  Result<PipelineResult> RunImpl(const ProcessedCorpus& corpus,
                                 const CandidateSet* candidates);

  std::unique_ptr<text::SequenceTagger> MakeTagger(int iteration) const;

  PipelineConfig config_;
};

}  // namespace pae::core

#endif  // PAE_CORE_BOOTSTRAP_H_
