#ifndef PAE_CORE_MODEL_ARTIFACT_H_
#define PAE_CORE_MODEL_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crf/crf_tagger.h"
#include "embed/packed_embeddings.h"
#include "embed/word2vec.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace pae::core {

// =====================================================================
// The `.paez` zero-copy model artifact (format version 1).
//
//   ┌──────────────────────────────┐ offset 0
//   │ PaezHeader (64 bytes)        │ magic, version, section count,
//   │                              │ file size, table checksum, flags
//   ├──────────────────────────────┤ offset 64
//   │ PaezSection × section_count  │ kind, alignment, offset, length,
//   │ (32 bytes each)              │ payload checksum
//   ├──────────────────────────────┤ first aligned offset
//   │ section payloads…            │ each padded to its alignment;
//   │                              │ weight/vector blocks are
//   │                              │ page-aligned (4096)
//   └──────────────────────────────┘ offset file_bytes
//
// Everything is offset-based — no pointers, no fixup pass — so the file
// is mapped read-only (MAP_SHARED) and used in place: the CRF feature
// dictionary is probed directly in the mapping
// (util::StringTableView), the weight vector is handed to inference as
// a span, and N processes share one physical copy of the pages.
//
// Versioning and compatibility: `version` is bumped on any layout
// change; readers reject unknown versions (no silent best-effort
// parse). Unknown section kinds are rejected too — v1 files contain
// exactly the kinds below. Kind 14 (kLstmParams) is RESERVED for the
// BiLSTM parameter block; reserving the id now means v1 readers fail
// loudly on v2 files instead of mis-slicing them.
//
// Checksum policy: the section *table* checksum is always verified on
// open (cheap, and it is what bounds every later read). Per-section
// payload checksums are verified when OpenOptions.verify_checksums is
// set — pae-model-pack does after writing, the corruption tests do,
// and the bench's "first-touch" pass does (doubling as the page
// warmer). The serving hot path opens with verification off: the
// structural bounds checks below still guarantee no read ever leaves
// the mapping, which is the safety property; payload integrity is the
// packer's exit criterion, not a per-publish tax.
// =====================================================================

inline constexpr uint32_t kPaezMagic = 0x5A454150;  // "PAEZ" little-endian
inline constexpr uint32_t kPaezVersion = 1;
inline constexpr uint32_t kPaezHeaderBytes = 64;

// Header flag bits.
inline constexpr uint64_t kPaezFlagCrf = 1u << 0;
inline constexpr uint64_t kPaezFlagEmbedF32 = 1u << 1;
inline constexpr uint64_t kPaezFlagEmbedInt8 = 1u << 2;

struct PaezHeader {
  uint32_t magic = kPaezMagic;
  uint32_t version = kPaezVersion;
  uint32_t header_bytes = kPaezHeaderBytes;
  uint32_t section_count = 0;
  uint64_t file_bytes = 0;
  uint64_t table_checksum = 0;  // ArtifactChecksum over the section table
  uint64_t flags = 0;
  uint8_t reserved[24] = {};
};
static_assert(sizeof(PaezHeader) == kPaezHeaderBytes,
              "header layout is the format");

/// Section kinds of format version 1.
enum PaezSectionKind : uint32_t {
  kCrfMeta = 1,          // PaezCrfMeta
  kCrfLabels = 2,        // [u32 count][count × u32 len][bytes]
  kCrfFeatureSlots = 3,  // PackedStringSlot[feature_slot_count]
  kCrfFeatureKeys = 4,   // PackedStringKey[num_features]
  kCrfFeatureArena = 5,  // raw key bytes
  kCrfWeights = 6,       // double[weight_count], page-aligned
  kEmbedMeta = 7,        // PaezEmbedMeta
  kEmbedVocabSlots = 8,  // PackedStringSlot[vocab_slot_count]
  kEmbedVocabKeys = 9,   // PackedStringKey[vocab_count]
  kEmbedVocabArena = 10,  // raw word bytes
  kEmbedVectorsF32 = 11,  // float[vocab_count × dim], page-aligned
  kEmbedVectorsI8 = 12,   // int8[vocab_count × dim], page-aligned
  kEmbedQuantParams = 13,  // embed::QuantParams[vocab_count]
  /// RESERVED for the BiLSTM parameter block (embedding table, gate
  /// weight slabs, projection). Not emitted by v1 writers; v1 readers
  /// reject files containing it, which is the compatibility contract.
  kLstmParams = 14,
};

struct PaezSection {
  uint32_t kind = 0;
  uint32_t align = 1;  // power of two; offset % align == 0
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;  // ArtifactChecksum over the payload bytes
};
static_assert(sizeof(PaezSection) == 32, "section layout is the format");

struct PaezCrfMeta {
  int32_t window = 0;
  int32_t max_sentence_bucket = 0;
  double c1 = 0;
  double c2 = 0;
  uint32_t num_labels = 0;
  uint32_t num_features = 0;
  uint64_t weight_count = 0;
  uint64_t feature_slot_count = 0;
};
static_assert(sizeof(PaezCrfMeta) == 48, "crf meta layout is the format");

struct PaezEmbedMeta {
  uint32_t dim = 0;
  uint32_t vocab_count = 0;
  uint64_t vocab_slot_count = 0;
  uint32_t quantized = 0;  // 0 = f32 section, 1 = int8 + quant params
  uint32_t reserved = 0;
};
static_assert(sizeof(PaezEmbedMeta) == 24, "embed meta layout is the format");

/// FNV-1a 64-bit over a byte range; the artifact's only checksum.
uint64_t ArtifactChecksum(const void* data, size_t bytes);

/// True when the file starts with the PAEZ magic — the sniff the
/// engine/tools use to route between the legacy BinaryReader parse and
/// the mmap path. False on unreadable/short files.
bool IsPaezFile(const std::string& path);

struct PackOptions {
  /// Write the embedding matrix as per-row affine int8 (+ QuantParams
  /// section) instead of float32. The accuracy gate for this variant
  /// lives in the bench/tests, not here.
  bool quantize_embeddings = false;
};

/// Packs a trained CRF tagger (and optionally embeddings) into a
/// `.paez` artifact at `out_path`. Deterministic: the same model bytes
/// always produce the same file. The tagger must be legacy-loaded or
/// freshly trained (not itself packed).
Status PackModelArtifact(const crf::CrfTagger& tagger,
                         const embed::Word2Vec* embeddings,
                         const PackOptions& options,
                         const std::string& out_path);

/// A validated, mmap'ed `.paez` artifact. Open() performs the full
/// structural validation pass (bounds, alignment, overlap, table
/// checksum, string-table invariants, dimension cross-checks) so every
/// later access is provably inside the mapping; view factories below
/// then hand out zero-copy models pinned to the artifact's lifetime.
class ModelArtifact {
 public:
  struct OpenOptions {
    /// Also verify every section's payload checksum (reads the whole
    /// file — first-touches all pages). Off on the serving hot path.
    bool verify_checksums = false;
  };

  static Result<std::shared_ptr<const ModelArtifact>> Open(
      const std::string& path, const OpenOptions& options);
  static Result<std::shared_ptr<const ModelArtifact>> Open(
      const std::string& path) {
    return Open(path, OpenOptions());
  }

  bool has_crf() const { return (header_.flags & kPaezFlagCrf) != 0; }
  bool has_embeddings() const {
    return (header_.flags & (kPaezFlagEmbedF32 | kPaezFlagEmbedInt8)) != 0;
  }
  bool embeddings_quantized() const {
    return (header_.flags & kPaezFlagEmbedInt8) != 0;
  }

  const PaezHeader& header() const { return header_; }
  const std::vector<PaezSection>& sections() const { return sections_; }
  const PaezCrfMeta& crf_meta() const { return crf_meta_; }
  const PaezEmbedMeta& embed_meta() const { return embed_meta_; }
  size_t file_bytes() const { return map_.size(); }

  /// Section payload start, or nullptr when the kind is absent.
  const uint8_t* SectionData(PaezSectionKind kind) const;
  /// Section payload length in bytes (0 when absent).
  size_t SectionLength(PaezSectionKind kind) const;

 private:
  ModelArtifact() = default;

  util::MmapFile map_;
  PaezHeader header_;
  std::vector<PaezSection> sections_;
  PaezCrfMeta crf_meta_;
  PaezEmbedMeta embed_meta_;
  std::vector<std::string> labels_;  // parsed once at Open (tiny)

  friend Result<crf::PackedCrfModel> MakePackedCrfModel(
      std::shared_ptr<const ModelArtifact> artifact);
};

/// Builds the zero-copy CRF model view: labels copied (a handful of
/// short strings), feature table and weights referenced in place. The
/// returned model's `owner` pins `artifact` (and its mapping).
Result<crf::PackedCrfModel> MakePackedCrfModel(
    std::shared_ptr<const ModelArtifact> artifact);

/// Builds the zero-copy embedding view (f32 or int8 per the artifact).
Result<embed::PackedEmbeddings> MakePackedEmbeddings(
    std::shared_ptr<const ModelArtifact> artifact);

}  // namespace pae::core

#endif  // PAE_CORE_MODEL_ARTIFACT_H_
