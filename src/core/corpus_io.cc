#include "core/corpus_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/normalize.h"
#include "util/logging.h"
#include "util/strings.h"

namespace pae::core {

namespace fs = std::filesystem;

namespace {

std::string SanitizeField(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  if (!out.good()) {
    return Status::Internal("failed writing " + path.string());
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> NonEmptyLines(const std::string& content) {
  std::vector<std::string> lines;
  for (auto& line : StrSplit(content, '\n')) {
    std::string_view trimmed = StripAsciiWhitespace(line);
    if (!trimmed.empty()) lines.emplace_back(trimmed);
  }
  return lines;
}

/// Lists <dir>/pages/*.html as sorted native path strings, summing the
/// on-disk sizes as a side product. All paths share the "<dir>/pages/"
/// prefix and filenames cannot contain '/', so byte-wise string order
/// equals fs::path component order — sorting the strings avoids
/// materializing and comparing fs::path objects per page, which
/// dominated corpus-open time on large directories.
Result<std::vector<std::string>> ListPageFiles(const std::string& dir,
                                               uint64_t* total_bytes) {
  const fs::path pages_dir = fs::path(dir) / "pages";
  if (!fs::exists(pages_dir)) {
    return Status::NotFound(pages_dir.string() + " missing");
  }
  std::vector<std::string> page_paths;
  if (total_bytes != nullptr) *total_bytes = 0;
  for (const auto& entry : fs::directory_iterator(pages_dir)) {
    const std::string& native = entry.path().native();
    // Suffix match replicating path::extension() == ".html": a filename
    // that IS ".html" has no extension and stays excluded.
    constexpr std::string_view kExt = ".html";
    if (native.size() <= kExt.size() ||
        std::string_view(native).substr(native.size() - kExt.size()) !=
            kExt) {
      continue;
    }
    const size_t slash = native.find_last_of('/');
    const std::string_view filename =
        slash == std::string::npos
            ? std::string_view(native)
            : std::string_view(native).substr(slash + 1);
    if (filename == kExt) continue;
    if (total_bytes != nullptr) {
      std::error_code ec;
      const uint64_t bytes = entry.file_size(ec);
      if (!ec) *total_bytes += bytes;
    }
    page_paths.push_back(native);
  }
  std::sort(page_paths.begin(), page_paths.end());
  return page_paths;
}

/// Product id of a listed page path: the filename minus its ".html"
/// suffix (what path::stem() returns for these names).
std::string ProductIdFromPagePath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const size_t begin = slash == std::string::npos ? 0 : slash + 1;
  return path.substr(begin, path.size() - begin - 5);
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "pages", ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }

  PAE_RETURN_IF_ERROR(WriteFile(
      fs::path(dir) / "manifest.tsv",
      SanitizeField(corpus.category) + "\t" +
          text::LanguageName(corpus.language) + "\n"));

  for (const ProductPage& page : corpus.pages) {
    PAE_RETURN_IF_ERROR(WriteFile(
        fs::path(dir) / "pages" / (page.product_id + ".html"), page.html));
  }

  std::string queries;
  for (const auto& q : corpus.query_log) queries += SanitizeField(q) + "\n";
  PAE_RETURN_IF_ERROR(WriteFile(fs::path(dir) / "queries.txt", queries));

  std::string lexicon;
  for (const auto& w : corpus.tokenizer_lexicon) {
    lexicon += SanitizeField(w) + "\n";
  }
  PAE_RETURN_IF_ERROR(WriteFile(fs::path(dir) / "lexicon.txt", lexicon));

  std::string pos;
  for (const auto& [word, tag] : corpus.pos_lexicon.word_tags) {
    pos += SanitizeField(word) + "\t" + SanitizeField(tag) + "\n";
  }
  return WriteFile(fs::path(dir) / "pos_lexicon.tsv", pos);
}

namespace {

/// Parses manifest.tsv into the category / language fields shared by
/// LoadCorpus and LoadCorpusResources.
Status LoadManifest(const std::string& dir, std::string* category,
                    text::Language* language) {
  Result<std::string> manifest = ReadFile(fs::path(dir) / "manifest.tsv");
  if (!manifest.ok()) return manifest.status();
  std::vector<std::string> lines = NonEmptyLines(manifest.value());
  if (lines.empty()) {
    return Status::InvalidArgument(dir + ": empty manifest.tsv");
  }
  std::vector<std::string> fields = StrSplit(lines[0], '\t');
  if (fields.size() < 2) {
    return Status::InvalidArgument(dir + ": malformed manifest.tsv");
  }
  *category = fields[0];
  if (fields[1] == "ja") {
    *language = text::Language::kJa;
  } else if (fields[1] == "de") {
    *language = text::Language::kDe;
  } else {
    return Status::InvalidArgument(dir + ": unknown language " + fields[1]);
  }
  return Status::Ok();
}

void LoadLexicons(const std::string& dir,
                  std::vector<std::string>* tokenizer_lexicon,
                  text::PosLexicon* pos_lexicon) {
  if (Result<std::string> lexicon = ReadFile(fs::path(dir) / "lexicon.txt");
      lexicon.ok()) {
    *tokenizer_lexicon = NonEmptyLines(lexicon.value());
  }
  if (Result<std::string> pos = ReadFile(fs::path(dir) / "pos_lexicon.tsv");
      pos.ok()) {
    for (const std::string& line : NonEmptyLines(pos.value())) {
      std::vector<std::string> parts = StrSplit(line, '\t');
      if (parts.size() >= 2) {
        pos_lexicon->word_tags[parts[0]] = parts[1];
      }
    }
  }
}

}  // namespace

Result<Corpus> LoadCorpus(const std::string& dir) {
  Corpus corpus;
  PAE_RETURN_IF_ERROR(
      LoadManifest(dir, &corpus.category, &corpus.language));

  Result<std::vector<std::string>> page_paths = ListPageFiles(dir, nullptr);
  if (!page_paths.ok()) return page_paths.status();
  for (const std::string& path : page_paths.value()) {
    Result<std::string> html = ReadFile(path);
    if (!html.ok()) return html.status();
    ProductPage page;
    page.product_id = ProductIdFromPagePath(path);
    page.html = std::move(html).value();
    corpus.pages.push_back(std::move(page));
  }

  if (Result<std::string> queries = ReadFile(fs::path(dir) / "queries.txt");
      queries.ok()) {
    corpus.query_log = NonEmptyLines(queries.value());
  }
  LoadLexicons(dir, &corpus.tokenizer_lexicon, &corpus.pos_lexicon);
  return corpus;
}

Result<StreamingCorpusReader> StreamingCorpusReader::Open(
    const std::string& dir) {
  StreamingCorpusReader reader;
  PAE_RETURN_IF_ERROR(LoadManifest(dir, &reader.resources_.category,
                                   &reader.resources_.language));
  LoadLexicons(dir, &reader.resources_.tokenizer_lexicon,
               &reader.resources_.pos_lexicon);
  if (Result<std::string> queries = ReadFile(fs::path(dir) / "queries.txt");
      queries.ok()) {
    reader.query_log_ = NonEmptyLines(queries.value());
  }

  Result<std::vector<std::string>> page_paths =
      ListPageFiles(dir, &reader.total_page_bytes_);
  if (!page_paths.ok()) return page_paths.status();
  reader.page_paths_ = std::move(page_paths).value();
  reader.product_ids_.reserve(reader.page_paths_.size());
  for (const std::string& path : reader.page_paths_) {
    reader.product_ids_.push_back(ProductIdFromPagePath(path));
  }
  return reader;
}

Status StreamingCorpusReader::ReadPageHtml(size_t page,
                                           std::string* html) const {
  PAE_DCHECK_LT(page, page_paths_.size());
  // Raw open/fstat/read: an ifstream costs a heap-allocated filebuf and
  // locale plumbing per construction, which is real money at one file
  // per page — this is the per-page IO hot path.
  const int fd = ::open(page_paths_[page].c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + page_paths_[page]);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("cannot stat " + page_paths_[page]);
  }
  html->resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < html->size()) {
    const ssize_t got =
        ::read(fd, html->data() + done, html->size() - done);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      ::close(fd);
      return Status::Internal("short read on " + page_paths_[page]);
    }
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  return Status::Ok();
}

Result<CorpusResources> LoadCorpusResources(const std::string& dir) {
  CorpusResources resources;
  PAE_RETURN_IF_ERROR(
      LoadManifest(dir, &resources.category, &resources.language));
  LoadLexicons(dir, &resources.tokenizer_lexicon, &resources.pos_lexicon);
  return resources;
}

Status SaveTruth(const TruthSample& truth, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  std::string rows;
  for (const TruthEntry& entry : truth.entries) {
    rows += SanitizeField(entry.triple.product_id) + "\t" +
            SanitizeField(entry.triple.attribute) + "\t" +
            SanitizeField(entry.triple.value) + "\t" +
            (entry.triple_correct ? "1" : "0") + "\t" +
            (entry.pair_valid ? "1" : "0") + "\n";
  }
  PAE_RETURN_IF_ERROR(WriteFile(fs::path(dir) / "truth.tsv", rows));

  std::string aliases;
  for (const auto& [surface, canonical] : truth.attribute_aliases) {
    aliases += SanitizeField(surface) + "\t" + SanitizeField(canonical) +
               "\n";
  }
  return WriteFile(fs::path(dir) / "aliases.tsv", aliases);
}

Result<TruthSample> LoadTruth(const std::string& dir) {
  TruthSample truth;
  Result<std::string> rows = ReadFile(fs::path(dir) / "truth.tsv");
  if (!rows.ok()) return rows.status();
  for (const std::string& line : NonEmptyLines(rows.value())) {
    std::vector<std::string> parts = StrSplit(line, '\t');
    if (parts.size() < 5) {
      return Status::InvalidArgument("malformed truth.tsv line: " + line);
    }
    TruthEntry entry;
    entry.triple = Triple{parts[0], parts[1], parts[2]};
    entry.triple_correct = parts[3] == "1";
    entry.pair_valid = parts[4] == "1";
    truth.entries.push_back(std::move(entry));
  }
  if (Result<std::string> aliases = ReadFile(fs::path(dir) / "aliases.tsv");
      aliases.ok()) {
    for (const std::string& line : NonEmptyLines(aliases.value())) {
      std::vector<std::string> parts = StrSplit(line, '\t');
      if (parts.size() >= 2) {
        truth.attribute_aliases[parts[0]] = parts[1];
      }
    }
  }
  // Rebuild the valid-pair set from correct entries.
  for (const TruthEntry& entry : truth.entries) {
    if (entry.triple_correct && entry.pair_valid) {
      truth.valid_pairs.insert(
          PairKey(truth.Canonical(entry.triple.attribute),
                  NormalizeValue(entry.triple.value)));
    }
  }
  return truth;
}

Status SaveTriples(const std::vector<Triple>& triples,
                   const std::string& path) {
  std::string rows = "product_id\tattribute\tvalue\n";
  for (const Triple& t : triples) {
    rows += SanitizeField(t.product_id) + "\t" +
            SanitizeField(t.attribute) + "\t" + SanitizeField(t.value) +
            "\n";
  }
  return WriteFile(path, rows);
}

Result<std::vector<Triple>> LoadTriples(const std::string& path) {
  Result<std::string> content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::vector<Triple> triples;
  bool first = true;
  for (const std::string& line : NonEmptyLines(content.value())) {
    if (first) {
      first = false;  // header
      continue;
    }
    std::vector<std::string> parts = StrSplit(line, '\t');
    if (parts.size() < 3) {
      return Status::InvalidArgument("malformed triples line: " + line);
    }
    triples.push_back(Triple{parts[0], parts[1], parts[2]});
  }
  return triples;
}

}  // namespace pae::core
