#ifndef PAE_CORE_PARTITION_H_
#define PAE_CORE_PARTITION_H_

#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/document.h"
#include "util/status.h"

namespace pae::core {

/// Implements the optimization the paper leaves as future work
/// (§VIII-D): "given a category, finding the best partition of
/// attributes that maximizes the coverage and precision for each
/// attribute".
///
/// The planner is fully self-supervised — it never touches the truth
/// sample. Seed pages (whose distant-supervision labels are the best
/// available proxy for ground truth) are split into train/holdout; a
/// global tagger and a specialized tagger over the weak attributes are
/// trained on the train part and scored span-wise against the held-out
/// labels; each attribute is then assigned to whichever model serves it
/// better.
struct PartitionOptions {
  /// Fraction of seed-labeled sentences held out for scoring.
  double holdout_fraction = 0.25;
  /// Global-model recall below which an attribute is considered weak
  /// and a specialized model is tried for it.
  double weak_recall = 0.5;
  /// A specialized assignment must beat the global recall by at least
  /// this much ...
  double min_recall_gain = 0.02;
  /// ... without losing more precision than this (§VIII-D reports the
  /// power-supply attribute dropping 90% → <70% when separated —
  /// exactly the regression this guard exists for).
  double max_precision_loss = 0.10;
  uint64_t seed = 33;
};

/// Span-level scores of one attribute under one model, measured against
/// held-out distant-supervision labels.
struct AttributeDiagnostics {
  std::string attribute;
  int gold_spans = 0;
  double global_recall = 0;
  double global_precision = 0;
  double specialized_recall = 0;     // 0 when not tried
  double specialized_precision = 0;  // 0 when not tried
  bool tried_specialized = false;
  bool assign_specialized = false;
};

/// The planned partition: one global group plus (at most one, in this
/// greedy planner) specialized group, with per-attribute diagnostics.
struct PartitionPlan {
  std::vector<std::string> global_group;
  std::vector<std::string> specialized_group;
  std::vector<AttributeDiagnostics> diagnostics;
};

/// Plans the partition for `corpus` under the given pipeline settings
/// (model family, feature configuration, seed construction knobs).
Result<PartitionPlan> PlanAttributePartition(const ProcessedCorpus& corpus,
                                             const PipelineConfig& config,
                                             const PartitionOptions& options);

}  // namespace pae::core

#endif  // PAE_CORE_PARTITION_H_
