#include "core/model_artifact.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <span>
#include <utility>

#include "util/logging.h"

namespace pae::core {

namespace {

static_assert(sizeof(embed::QuantParams) == 8,
              "quant params layout is the format");

/// Caps insane headers before any allocation sized from them.
constexpr uint32_t kMaxSections = 64;

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

void AppendPod(std::string* out, const void* data, size_t bytes) {
  out->append(reinterpret_cast<const char*>(data), bytes);
}

/// One section being assembled by the writer.
struct PendingSection {
  uint32_t kind = 0;
  uint32_t align = 1;
  std::string payload;
};

/// Lays out `pending` after the header + table, writes the file.
Status WriteArtifact(uint64_t flags, std::vector<PendingSection> pending,
                     const std::string& out_path) {
  PaezHeader header;
  header.section_count = static_cast<uint32_t>(pending.size());
  header.flags = flags;

  std::vector<PaezSection> table(pending.size());
  size_t cursor = kPaezHeaderBytes + pending.size() * sizeof(PaezSection);
  for (size_t i = 0; i < pending.size(); ++i) {
    cursor = AlignUp(cursor, pending[i].align);
    table[i].kind = pending[i].kind;
    table[i].align = pending[i].align;
    table[i].offset = cursor;
    table[i].length = pending[i].payload.size();
    table[i].checksum =
        ArtifactChecksum(pending[i].payload.data(), pending[i].payload.size());
    cursor += pending[i].payload.size();
  }
  header.file_bytes = cursor;
  header.table_checksum =
      ArtifactChecksum(table.data(), table.size() * sizeof(PaezSection));

  std::string file;
  file.reserve(cursor);
  AppendPod(&file, &header, sizeof(header));
  AppendPod(&file, table.data(), table.size() * sizeof(PaezSection));
  for (size_t i = 0; i < pending.size(); ++i) {
    file.resize(table[i].offset, '\0');  // alignment padding
    file += pending[i].payload;
  }
  PAE_CHECK_EQ(file.size(), cursor);

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("paez: cannot open " + out_path + " for write");
  }
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out) {
    return Status::Internal("paez: failed writing " + out_path);
  }
  return Status::Ok();
}

std::string PackLabels(const std::vector<std::string>& labels) {
  std::string payload;
  const uint32_t count = static_cast<uint32_t>(labels.size());
  AppendPod(&payload, &count, sizeof(count));
  for (const std::string& label : labels) {
    const uint32_t len = static_cast<uint32_t>(label.size());
    AppendPod(&payload, &len, sizeof(len));
  }
  for (const std::string& label : labels) payload += label;
  return payload;
}

Status ParseLabels(const uint8_t* data, size_t length,
                   std::vector<std::string>* labels) {
  if (length < sizeof(uint32_t)) {
    return Status::OutOfRange("paez: truncated label section");
  }
  uint32_t count = 0;
  std::memcpy(&count, data, sizeof(count));
  const size_t lens_end = sizeof(uint32_t) + size_t{count} * sizeof(uint32_t);
  if (count > length || lens_end > length) {
    return Status::OutOfRange("paez: label count out of section bounds");
  }
  labels->clear();
  labels->reserve(count);
  size_t cursor = lens_end;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    std::memcpy(&len, data + sizeof(uint32_t) + size_t{i} * sizeof(uint32_t),
                sizeof(len));
    if (len > length - cursor) {
      return Status::OutOfRange("paez: label bytes out of section bounds");
    }
    labels->emplace_back(reinterpret_cast<const char*>(data + cursor), len);
    cursor += len;
  }
  if (cursor != length) {
    return Status::InvalidArgument("paez: label section has trailing bytes");
  }
  return Status::Ok();
}

/// Casts a section payload to a typed array, checking the element size
/// divides the length. The bounds themselves were validated at Open.
template <typename T>
std::span<const T> SectionArray(const uint8_t* data, size_t length) {
  PAE_DCHECK_EQ(length % sizeof(T), 0u);
  return std::span<const T>(reinterpret_cast<const T*>(data),
                            length / sizeof(T));
}

/// The O(1) string-table shape invariants every open enforces: the slot
/// count is a nonzero power of two (the probe masks with count - 1) and
/// there is at least one free slot. Per-entry integrity is enforced by
/// StringTableView's guarded probe on the serving path, or eagerly by
/// Validate() on checksum-verified opens — so the structural open stays
/// O(sections), not O(model).
Status CheckTableShape(uint64_t slot_count, uint64_t key_count,
                       const char* what, const std::string& path) {
  if (slot_count == 0 || (slot_count & (slot_count - 1)) != 0 ||
      key_count >= slot_count) {
    return Status::InvalidArgument(std::string("paez: ") + what +
                                   " string table has invalid shape in " +
                                   path);
  }
  return Status::Ok();
}

}  // namespace

uint64_t ArtifactChecksum(const void* data, size_t bytes) {
  // FNV-1a 64: dirt simple, byte-order free, and plenty for corruption
  // detection (this is an integrity check, not an authenticity one).
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

bool IsPaezFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kPaezMagic;
}

Status PackModelArtifact(const crf::CrfTagger& tagger,
                         const embed::Word2Vec* embeddings,
                         const PackOptions& options,
                         const std::string& out_path) {
  if (!tagger.trained()) {
    return Status::FailedPrecondition("paez: packing an untrained model");
  }
  if (tagger.packed()) {
    return Status::FailedPrecondition(
        "paez: tagger is already packed; pack from the legacy file");
  }
  const crf::CrfModel& model = tagger.model();
  uint64_t flags = kPaezFlagCrf;
  std::vector<PendingSection> sections;

  // --- CRF sections ---
  std::vector<util::PackedStringSlot> slots;
  std::vector<util::PackedStringKey> keys;
  std::string arena;
  model.ExportPackedFeatures(&slots, &keys, &arena);

  PaezCrfMeta meta;
  meta.window = tagger.options().features.window;
  meta.max_sentence_bucket = tagger.options().features.max_sentence_bucket;
  meta.c1 = tagger.options().c1;
  meta.c2 = tagger.options().c2;
  meta.num_labels = static_cast<uint32_t>(model.num_labels());
  meta.num_features = static_cast<uint32_t>(model.num_features());
  meta.weight_count = tagger.weights_span().size();
  meta.feature_slot_count = slots.size();

  PendingSection s;
  s.kind = kCrfMeta;
  s.align = 8;
  AppendPod(&s.payload, &meta, sizeof(meta));
  sections.push_back(std::move(s));

  s = PendingSection{};
  s.kind = kCrfLabels;
  s.align = 4;
  s.payload = PackLabels(model.labels());
  sections.push_back(std::move(s));

  s = PendingSection{};
  s.kind = kCrfFeatureSlots;
  s.align = 16;
  AppendPod(&s.payload, slots.data(),
            slots.size() * sizeof(util::PackedStringSlot));
  sections.push_back(std::move(s));

  s = PendingSection{};
  s.kind = kCrfFeatureKeys;
  s.align = 16;
  AppendPod(&s.payload, keys.data(),
            keys.size() * sizeof(util::PackedStringKey));
  sections.push_back(std::move(s));

  s = PendingSection{};
  s.kind = kCrfFeatureArena;
  s.align = 1;
  s.payload = std::move(arena);
  sections.push_back(std::move(s));

  s = PendingSection{};
  s.kind = kCrfWeights;
  s.align = 4096;  // page-aligned: served directly out of the mapping
  AppendPod(&s.payload, tagger.weights_span().data(),
            tagger.weights_span().size() * sizeof(double));
  sections.push_back(std::move(s));

  // --- embedding sections ---
  if (embeddings != nullptr) {
    const size_t dim = embeddings->dim();
    const size_t vocab = embeddings->vocab_size();
    if (dim == 0 || vocab == 0) {
      return Status::FailedPrecondition("paez: embeddings are empty");
    }
    std::vector<util::PackedStringSlot> vslots;
    std::vector<util::PackedStringKey> vkeys;
    std::string varena;
    embeddings->vocab().ExportPacked(&vslots, &vkeys, &varena);

    PaezEmbedMeta emeta;
    emeta.dim = static_cast<uint32_t>(dim);
    emeta.vocab_count = static_cast<uint32_t>(vocab);
    emeta.vocab_slot_count = vslots.size();
    emeta.quantized = options.quantize_embeddings ? 1 : 0;

    s = PendingSection{};
    s.kind = kEmbedMeta;
    s.align = 8;
    AppendPod(&s.payload, &emeta, sizeof(emeta));
    sections.push_back(std::move(s));

    s = PendingSection{};
    s.kind = kEmbedVocabSlots;
    s.align = 16;
    AppendPod(&s.payload, vslots.data(),
              vslots.size() * sizeof(util::PackedStringSlot));
    sections.push_back(std::move(s));

    s = PendingSection{};
    s.kind = kEmbedVocabKeys;
    s.align = 16;
    AppendPod(&s.payload, vkeys.data(),
              vkeys.size() * sizeof(util::PackedStringKey));
    sections.push_back(std::move(s));

    s = PendingSection{};
    s.kind = kEmbedVocabArena;
    s.align = 1;
    s.payload = std::move(varena);
    sections.push_back(std::move(s));

    const math::Matrix& vectors = embeddings->vectors();
    PAE_CHECK_EQ(vectors.rows(), vocab);
    PAE_CHECK_EQ(vectors.cols(), dim);
    if (options.quantize_embeddings) {
      flags |= kPaezFlagEmbedInt8;
      std::vector<int8_t> q(vocab * dim);
      std::vector<embed::QuantParams> params(vocab);
      for (size_t r = 0; r < vocab; ++r) {
        params[r] =
            embed::QuantizeRow(vectors.Row(r), dim, q.data() + r * dim);
      }
      s = PendingSection{};
      s.kind = kEmbedVectorsI8;
      s.align = 4096;
      AppendPod(&s.payload, q.data(), q.size());
      sections.push_back(std::move(s));

      s = PendingSection{};
      s.kind = kEmbedQuantParams;
      s.align = 8;
      AppendPod(&s.payload, params.data(),
                params.size() * sizeof(embed::QuantParams));
      sections.push_back(std::move(s));
    } else {
      flags |= kPaezFlagEmbedF32;
      s = PendingSection{};
      s.kind = kEmbedVectorsF32;
      s.align = 4096;
      AppendPod(&s.payload, vectors.data().data(),
                vectors.data().size() * sizeof(float));
      sections.push_back(std::move(s));
    }
  }

  return WriteArtifact(flags, std::move(sections), out_path);
}

const uint8_t* ModelArtifact::SectionData(PaezSectionKind kind) const {
  for (const PaezSection& section : sections_) {
    if (section.kind == kind) return map_.data() + section.offset;
  }
  return nullptr;
}

size_t ModelArtifact::SectionLength(PaezSectionKind kind) const {
  for (const PaezSection& section : sections_) {
    if (section.kind == kind) return section.length;
  }
  return 0;
}

Result<std::shared_ptr<const ModelArtifact>> ModelArtifact::Open(
    const std::string& path, const OpenOptions& options) {
  Result<util::MmapFile> map = util::MmapFile::Open(path);
  if (!map.ok()) return map.status();
  auto artifact = std::shared_ptr<ModelArtifact>(new ModelArtifact());
  artifact->map_ = std::move(map).value();
  const uint8_t* base = artifact->map_.data();
  const size_t file_bytes = artifact->map_.size();

  // --- header ---
  if (file_bytes < kPaezHeaderBytes) {
    return Status::OutOfRange("paez: truncated header in " + path);
  }
  std::memcpy(&artifact->header_, base, sizeof(PaezHeader));
  const PaezHeader& header = artifact->header_;
  if (header.magic != kPaezMagic) {
    return Status::InvalidArgument("paez: bad magic in " + path);
  }
  if (header.version != kPaezVersion) {
    return Status::InvalidArgument("paez: unsupported format version in " +
                                   path);
  }
  if (header.header_bytes != kPaezHeaderBytes) {
    return Status::InvalidArgument("paez: bad header size in " + path);
  }
  if (header.file_bytes != file_bytes) {
    return Status::OutOfRange("paez: file size mismatch in " + path);
  }
  if (header.section_count == 0 || header.section_count > kMaxSections) {
    return Status::InvalidArgument("paez: bad section count in " + path);
  }
  const size_t table_bytes = size_t{header.section_count} * sizeof(PaezSection);
  const size_t table_end = kPaezHeaderBytes + table_bytes;
  if (table_end > file_bytes) {
    return Status::OutOfRange("paez: section table out of bounds in " + path);
  }

  // --- section table (checksum ALWAYS verified — it bounds every later
  // read, and hashing ~2KB is free next to an open) ---
  if (ArtifactChecksum(base + kPaezHeaderBytes, table_bytes) !=
      header.table_checksum) {
    return Status::InvalidArgument("paez: section table checksum mismatch in " +
                                   path);
  }
  artifact->sections_.resize(header.section_count);
  std::memcpy(artifact->sections_.data(), base + kPaezHeaderBytes,
              table_bytes);

  for (const PaezSection& section : artifact->sections_) {
    if (section.align == 0 || (section.align & (section.align - 1)) != 0 ||
        section.align > 4096) {
      return Status::InvalidArgument("paez: bad section alignment in " + path);
    }
    if (section.offset < table_end || section.offset % section.align != 0) {
      return Status::OutOfRange("paez: bad section offset in " + path);
    }
    if (section.offset > file_bytes ||
        section.length > file_bytes - section.offset) {
      return Status::OutOfRange("paez: section out of file bounds in " + path);
    }
    if (section.kind == 0 || section.kind > kEmbedQuantParams) {
      // Includes the reserved kLstmParams: a v1 reader must not guess
      // at sections it cannot interpret.
      return Status::InvalidArgument("paez: unknown section kind in " + path);
    }
  }
  // No duplicate kinds, no overlapping payloads.
  std::vector<PaezSection> by_offset = artifact->sections_;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const PaezSection& a, const PaezSection& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < by_offset.size(); ++i) {
    if (by_offset[i - 1].offset + by_offset[i - 1].length >
        by_offset[i].offset) {
      return Status::OutOfRange("paez: overlapping sections in " + path);
    }
  }
  for (size_t i = 0; i < artifact->sections_.size(); ++i) {
    for (size_t j = i + 1; j < artifact->sections_.size(); ++j) {
      if (artifact->sections_[i].kind == artifact->sections_[j].kind) {
        return Status::InvalidArgument("paez: duplicate section kind in " +
                                       path);
      }
    }
  }

  if (options.verify_checksums) {
    for (const PaezSection& section : artifact->sections_) {
      if (ArtifactChecksum(base + section.offset, section.length) !=
          section.checksum) {
        return Status::InvalidArgument("paez: section checksum mismatch in " +
                                       path);
      }
    }
  }

  // --- cross-checks: every view handed out later is sized here.
  // `count * size` is guarded against u64 wraparound: a crafted
  // element count near 2^64 / size would otherwise multiply to a tiny
  // expected length, let a short section pass, and hand later lookups a
  // view claiming far more elements than the mapping holds (found by
  // the .paez fuzz target; fuzz/corpus/paez/regression-slot-count-
  // overflow.paez is the reproducer). No real section outgrows the
  // file, so counts above file_bytes / size are rejected outright. ---
  auto require = [&](PaezSectionKind kind, uint64_t element_count,
                     uint64_t element_size, const char* what) -> Status {
    const uint8_t* data = artifact->SectionData(kind);
    if (data == nullptr) {
      return Status::InvalidArgument(std::string("paez: missing ") + what +
                                     " section in " + path);
    }
    if (element_count > file_bytes / element_size) {
      return Status::OutOfRange(std::string("paez: ") + what +
                                " element count exceeds the file in " + path);
    }
    if (artifact->SectionLength(kind) != element_count * element_size) {
      return Status::OutOfRange(std::string("paez: ") + what +
                                " section has wrong length in " + path);
    }
    return Status::Ok();
  };

  if ((header.flags & kPaezFlagCrf) != 0) {
    PAE_RETURN_IF_ERROR(require(kCrfMeta, 1, sizeof(PaezCrfMeta), "crf meta"));
    std::memcpy(&artifact->crf_meta_, artifact->SectionData(kCrfMeta),
                sizeof(PaezCrfMeta));
    const PaezCrfMeta& meta = artifact->crf_meta_;
    const uint64_t labels = meta.num_labels;
    const uint64_t features = meta.num_features;
    if (labels == 0 || features == 0 ||
        meta.weight_count !=
            features * labels + labels * labels + 2 * labels) {
      return Status::InvalidArgument("paez: inconsistent crf meta in " + path);
    }
    PAE_RETURN_IF_ERROR(
        require(kCrfFeatureSlots, meta.feature_slot_count,
                sizeof(util::PackedStringSlot), "crf feature slot"));
    PAE_RETURN_IF_ERROR(require(
        kCrfFeatureKeys, features, sizeof(util::PackedStringKey),
        "crf feature key"));
    if (artifact->SectionData(kCrfFeatureArena) == nullptr) {
      return Status::InvalidArgument("paez: missing crf arena section in " +
                                     path);
    }
    PAE_RETURN_IF_ERROR(require(kCrfWeights, meta.weight_count,
                                sizeof(double), "crf weight"));
    PAE_RETURN_IF_ERROR(CheckTableShape(meta.feature_slot_count, features,
                                        "crf feature", path));
    if (options.verify_checksums) {
      PAE_RETURN_IF_ERROR(util::StringTableView::Validate(
          reinterpret_cast<const util::PackedStringSlot*>(
              artifact->SectionData(kCrfFeatureSlots)),
          meta.feature_slot_count,
          reinterpret_cast<const util::PackedStringKey*>(
              artifact->SectionData(kCrfFeatureKeys)),
          features, artifact->SectionLength(kCrfFeatureArena)));
    }
    PAE_RETURN_IF_ERROR(ParseLabels(artifact->SectionData(kCrfLabels),
                                    artifact->SectionLength(kCrfLabels),
                                    &artifact->labels_));
    if (artifact->labels_.size() != labels) {
      return Status::InvalidArgument("paez: label count mismatch in " + path);
    }
  }

  if ((header.flags & (kPaezFlagEmbedF32 | kPaezFlagEmbedInt8)) != 0) {
    if ((header.flags & kPaezFlagEmbedF32) != 0 &&
        (header.flags & kPaezFlagEmbedInt8) != 0) {
      return Status::InvalidArgument("paez: both embedding variants in " +
                                     path);
    }
    PAE_RETURN_IF_ERROR(
        require(kEmbedMeta, 1, sizeof(PaezEmbedMeta), "embed meta"));
    std::memcpy(&artifact->embed_meta_, artifact->SectionData(kEmbedMeta),
                sizeof(PaezEmbedMeta));
    const PaezEmbedMeta& emeta = artifact->embed_meta_;
    const bool quantized = (header.flags & kPaezFlagEmbedInt8) != 0;
    if (emeta.dim == 0 || emeta.vocab_count == 0 ||
        (emeta.quantized != 0) != quantized) {
      return Status::InvalidArgument("paez: inconsistent embed meta in " +
                                     path);
    }
    const uint64_t vocab = emeta.vocab_count;
    const uint64_t dim = emeta.dim;
    PAE_RETURN_IF_ERROR(
        require(kEmbedVocabSlots, emeta.vocab_slot_count,
                sizeof(util::PackedStringSlot), "embed vocab slot"));
    PAE_RETURN_IF_ERROR(require(kEmbedVocabKeys, vocab,
                                sizeof(util::PackedStringKey),
                                "embed vocab key"));
    if (artifact->SectionData(kEmbedVocabArena) == nullptr) {
      return Status::InvalidArgument("paez: missing embed arena section in " +
                                     path);
    }
    if (quantized) {
      PAE_RETURN_IF_ERROR(
          require(kEmbedVectorsI8, vocab * dim, 1, "embed int8 vector"));
      PAE_RETURN_IF_ERROR(require(kEmbedQuantParams, vocab,
                                  sizeof(embed::QuantParams),
                                  "embed quant param"));
    } else {
      PAE_RETURN_IF_ERROR(require(kEmbedVectorsF32, vocab * dim,
                                  sizeof(float), "embed f32 vector"));
    }
    PAE_RETURN_IF_ERROR(CheckTableShape(emeta.vocab_slot_count, vocab,
                                        "embed vocab", path));
    if (options.verify_checksums) {
      PAE_RETURN_IF_ERROR(util::StringTableView::Validate(
          reinterpret_cast<const util::PackedStringSlot*>(
              artifact->SectionData(kEmbedVocabSlots)),
          emeta.vocab_slot_count,
          reinterpret_cast<const util::PackedStringKey*>(
              artifact->SectionData(kEmbedVocabKeys)),
          vocab, artifact->SectionLength(kEmbedVocabArena)));
    }
  }

  return std::shared_ptr<const ModelArtifact>(std::move(artifact));
}

Result<crf::PackedCrfModel> MakePackedCrfModel(
    std::shared_ptr<const ModelArtifact> artifact) {
  PAE_CHECK(artifact != nullptr);
  if (!artifact->has_crf()) {
    return Status::FailedPrecondition("paez: artifact has no CRF sections");
  }
  const PaezCrfMeta& meta = artifact->crf_meta();
  crf::PackedCrfModel packed;
  packed.window = meta.window;
  packed.max_sentence_bucket = meta.max_sentence_bucket;
  packed.c1 = meta.c1;
  packed.c2 = meta.c2;
  packed.labels = artifact->labels_;
  packed.features = util::StringTableView(
      reinterpret_cast<const util::PackedStringSlot*>(
          artifact->SectionData(kCrfFeatureSlots)),
      meta.feature_slot_count,
      reinterpret_cast<const util::PackedStringKey*>(
          artifact->SectionData(kCrfFeatureKeys)),
      meta.num_features,
      reinterpret_cast<const char*>(artifact->SectionData(kCrfFeatureArena)),
      artifact->SectionLength(kCrfFeatureArena));
  packed.weights = SectionArray<double>(artifact->SectionData(kCrfWeights),
                                        artifact->SectionLength(kCrfWeights));
  packed.owner = std::move(artifact);
  return packed;
}

Result<embed::PackedEmbeddings> MakePackedEmbeddings(
    std::shared_ptr<const ModelArtifact> artifact) {
  PAE_CHECK(artifact != nullptr);
  if (!artifact->has_embeddings()) {
    return Status::FailedPrecondition(
        "paez: artifact has no embedding sections");
  }
  const PaezEmbedMeta& meta = artifact->embed_meta();
  const util::StringTableView vocab(
      reinterpret_cast<const util::PackedStringSlot*>(
          artifact->SectionData(kEmbedVocabSlots)),
      meta.vocab_slot_count,
      reinterpret_cast<const util::PackedStringKey*>(
          artifact->SectionData(kEmbedVocabKeys)),
      meta.vocab_count,
      reinterpret_cast<const char*>(artifact->SectionData(kEmbedVocabArena)),
      artifact->SectionLength(kEmbedVocabArena));
  if (artifact->embeddings_quantized()) {
    const int8_t* vectors =
        reinterpret_cast<const int8_t*>(artifact->SectionData(kEmbedVectorsI8));
    const embed::QuantParams* params =
        reinterpret_cast<const embed::QuantParams*>(
            artifact->SectionData(kEmbedQuantParams));
    return embed::PackedEmbeddings::FromInt8(vocab, meta.dim, vectors, params,
                                             std::move(artifact));
  }
  const float* vectors =
      reinterpret_cast<const float*>(artifact->SectionData(kEmbedVectorsF32));
  return embed::PackedEmbeddings::FromF32(vocab, meta.dim, vectors,
                                          std::move(artifact));
}

}  // namespace pae::core
