#include "core/apply.h"

#include <algorithm>
#include <unordered_map>

#include "core/normalize.h"
#include "crf/compiled_corpus.h"
#include "crf/crf_tagger.h"
#include "text/negation.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace pae::core {

std::vector<Triple> ExtractWithModel(const text::SequenceTagger& tagger,
                                     const ProcessedCorpus& corpus,
                                     const ApplyOptions& options) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer timer(metrics.GetHistogram("apply.seconds"));
  ApplyStats stats;
  const text::NegationDetector negation(corpus.language);

  struct PendingTriple {
    Triple triple;
    std::string pair_key;
  };
  std::vector<PendingTriple> pending;
  std::unordered_map<std::string, TaggedCandidate> candidate_map;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      candidate_products;

  // Tag all sentences on the pool; merge the per-sentence spans in
  // corpus order afterwards so every map fill and dedup decision matches
  // the serial pass byte for byte.
  struct SentRef {
    size_t page;
    size_t sent;
  };
  std::vector<SentRef> refs;
  for (size_t p = 0; p < corpus.pages.size(); ++p) {
    for (size_t s = 0; s < corpus.pages[p].sentences.size(); ++s) {
      refs.push_back(SentRef{p, s});
    }
  }
  // CRF fast path: extract every sentence's features once into a
  // compiled cache; the parallel sweep then only remaps ids and runs
  // inference. Other tagger types fall back to per-sentence compilation.
  const auto* crf_tagger = dynamic_cast<const crf::CrfTagger*>(&tagger);
  crf::CompiledCorpus crf_cache;
  if (crf_tagger != nullptr && !refs.empty()) {
    std::vector<const text::LabeledSequence*> cache_sents;
    cache_sents.reserve(refs.size());
    for (const SentRef& ref : refs) {
      cache_sents.push_back(&corpus.pages[ref.page].sentences[ref.sent]);
    }
    crf_cache.Build(std::move(cache_sents), crf_tagger->options().features);
    crf_cache.Bind(crf_tagger->model(), crf_tagger->Generation());
  }

  std::vector<std::vector<text::ValueSpan>> sent_spans(refs.size());
  // Per-sentence drop tallies: each worker writes only its own slot, so
  // the sequential sum below is deterministic and contention-free.
  std::vector<uint8_t> negation_dropped(refs.size(), 0);
  std::vector<uint32_t> confidence_dropped(refs.size(), 0);
  util::ThreadPool pool(util::ThreadPool::ResolveThreads(options.threads));
  pool.ParallelFor(0, refs.size(), 8, [&](size_t i) {
    const ProcessedPage& page = corpus.pages[refs[i].page];
    const text::LabeledSequence& sentence = page.sentences[refs[i].sent];
    if (options.negation_filtering && negation.IsNegated(sentence.tokens)) {
      negation_dropped[i] = 1;
      return;
    }
    text::SequenceTagger::ScoredPrediction scored;
    if (crf_tagger != nullptr) {
      thread_local crf::CompiledSequence compiled;
      crf_cache.Materialize(i, &compiled);
      scored = crf_tagger->PredictScored(compiled);
    } else {
      scored = tagger.PredictScored(sentence);
    }
    for (const text::ValueSpan& span : text::DecodeBioSpans(scored.labels)) {
      if (options.min_span_confidence > 0) {
        double min_conf = 1.0;
        for (size_t k = span.begin; k < span.end; ++k) {
          min_conf = std::min(min_conf, scored.confidence[k]);
        }
        if (min_conf < options.min_span_confidence) {
          ++confidence_dropped[i];
          continue;
        }
      }
      sent_spans[i].push_back(span);
    }
  });

  stats.sentences = static_cast<int64_t>(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    stats.negation_dropped += negation_dropped[i];
    stats.confidence_dropped += confidence_dropped[i];
    stats.spans += static_cast<int64_t>(sent_spans[i].size());
  }

  for (size_t i = 0; i < refs.size(); ++i) {
    const ProcessedPage& page = corpus.pages[refs[i].page];
    const text::LabeledSequence& sentence = page.sentences[refs[i].sent];
    for (const text::ValueSpan& span : sent_spans[i]) {
      std::vector<std::string> value_tokens(
          sentence.tokens.begin() + static_cast<long>(span.begin),
          sentence.tokens.begin() + static_cast<long>(span.end));
      const std::string display = corpus.Detokenize(value_tokens);
      const std::string key =
          PairKey(span.attribute, NormalizeValue(display));
      if (!options.accepted_pairs.empty() &&
          options.accepted_pairs.count(key) == 0) {
        continue;
      }
      pending.push_back(
          {Triple{page.product_id, span.attribute, display}, key});
      auto [it, inserted] = candidate_map.emplace(key, TaggedCandidate{});
      if (inserted) {
        it->second.attribute = span.attribute;
        it->second.value_display = display;
        it->second.value_tokens = std::move(value_tokens);
      }
      if (candidate_products[key].insert(page.product_id).second) {
        it->second.item_count += 1;
      }
    }
  }

  // Veto the candidate set, then keep only triples whose pair survived.
  std::unordered_set<std::string> surviving;
  if (options.veto_rules) {
    std::vector<TaggedCandidate> candidates;
    candidates.reserve(candidate_map.size());
    for (auto& [key, c] : candidate_map) candidates.push_back(std::move(c));
    std::sort(candidates.begin(), candidates.end(),
              [](const TaggedCandidate& a, const TaggedCandidate& b) {
                if (a.item_count != b.item_count) {
                  return a.item_count > b.item_count;
                }
                if (a.attribute != b.attribute) {
                  return a.attribute < b.attribute;
                }
                return a.value_display < b.value_display;
              });
    for (const TaggedCandidate& c :
         ApplyVetoRules(std::move(candidates), options.veto,
                        &stats.cleaning)) {
      surviving.insert(
          PairKey(c.attribute, NormalizeValue(c.value_display)));
    }
    stats.candidates_vetoed =
        static_cast<int64_t>(candidate_map.size() - surviving.size());
  }
  stats.candidates = static_cast<int64_t>(candidate_map.size());

  std::vector<Triple> out;
  std::unordered_set<std::string> seen;
  for (PendingTriple& p : pending) {
    if (options.veto_rules && surviving.count(p.pair_key) == 0) continue;
    const std::string triple_key =
        p.triple.product_id + "\t" + p.pair_key;
    if (!seen.insert(triple_key).second) continue;
    out.push_back(std::move(p.triple));
  }
  stats.triples = static_cast<int64_t>(out.size());

  metrics.GetCounter("apply.sentences")->Add(stats.sentences);
  metrics.GetCounter("apply.negation_dropped")->Add(stats.negation_dropped);
  metrics.GetCounter("apply.spans")->Add(stats.spans);
  metrics.GetCounter("apply.confidence_dropped")
      ->Add(stats.confidence_dropped);
  metrics.GetCounter("apply.candidates")->Add(stats.candidates);
  metrics.GetCounter("apply.candidates_vetoed")->Add(stats.candidates_vetoed);
  metrics.GetCounter("apply.triples")->Add(stats.triples);
  RecordCleaningMetrics(stats.cleaning);
  const double elapsed = timer.Stop();
  if (elapsed > 0) {
    metrics.GetGauge("apply.sentences_per_second")
        ->Set(static_cast<double>(stats.sentences) / elapsed);
  }
  if (options.stats != nullptr) *options.stats = stats;
  return out;
}

}  // namespace pae::core
