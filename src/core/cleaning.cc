#include "core/cleaning.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "math/matrix.h"
#include "text/char_class.h"
#include "text/utf8.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace pae::core {

namespace {

/// Veto rule (i): a 1-gram entity that is a symbol (";", "*", "★").
bool IsSymbolEntity(const TaggedCandidate& c) {
  if (c.value_tokens.size() != 1) return false;
  std::vector<char32_t> cps = text::DecodeUtf8(c.value_tokens[0]);
  for (char32_t cp : cps) {
    text::CharClass cls = text::ClassifyChar(cp);
    if (cls != text::CharClass::kSymbol && cls != text::CharClass::kOther) {
      return false;
    }
  }
  return !cps.empty();
}

/// Veto rule (ii): mark-up remnants — tag characters or decorative
/// marks inside the value.
bool IsMarkup(const TaggedCandidate& c) {
  for (const std::string& token : c.value_tokens) {
    if (token == "<" || token == ">" || token == "&" || token == "★" ||
        token == "※" || token == "*") {
      return true;
    }
    if (token.find('<') != std::string::npos ||
        token.find('>') != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// A semantic core with its embedding rows pre-normalized to unit
/// length: cosine(candidate, member i) is then one row of a single
/// MatVec against the normalized candidate, instead of a per-pair
/// CosineSimilarity that recomputes both norms every call.
struct CoreMatrix {
  std::vector<std::string> values;  // core member merged tokens
  math::Matrix normalized;          // [n x dim]; zero row when norm ~ 0
};

/// Unit-normalizes `v` into `row` (dim floats); writes zeros when the
/// norm is (near) zero, which makes every cosine against it 0 — the
/// same contract as kernels::CosineFromNorms.
void WriteUnitRow(const float* v, size_t dim, float* row) {
  const double norm = math::kernels::Norm2(v, dim);
  if (norm < 1e-12) {
    std::fill(row, row + dim, 0.0f);
    return;
  }
  std::copy(v, v + dim, row);
  math::kernels::Scale(static_cast<float>(1.0 / norm), row, dim);
}

CoreMatrix BuildCoreMatrix(const embed::Word2Vec& model,
                           std::vector<std::string> core) {
  CoreMatrix cm;
  cm.values = std::move(core);
  const size_t d = model.dim();
  cm.normalized = math::Matrix(cm.values.size(), d);
  for (size_t i = 0; i < cm.values.size(); ++i) {
    const float* v = model.Vector(cm.values[i]);
    PAE_DCHECK(v != nullptr);  // BuildCore only admits in-vocab values
    WriteUnitRow(v, d, cm.normalized.Row(i));
  }
  return cm;
}

/// Cosines of `vec` (un-normalized, `dim` floats) against every row of
/// the core, into `sims`. One Norm2 for the candidate plus one MatVec —
/// the per-pair norm recomputation is gone.
void CoreCosines(const CoreMatrix& cm, const float* vec, size_t dim,
                 std::vector<float>* sims) {
  const size_t n = cm.values.size();
  sims->assign(n, 0.0f);
  const double norm = math::kernels::Norm2(vec, dim);
  if (norm < 1e-12) return;
  std::vector<float> unit(vec, vec + dim);
  math::kernels::Scale(static_cast<float>(1.0 / norm), unit.data(), dim);
  math::kernels::MatVec(cm.normalized.data().data(), n, dim, unit.data(),
                        sims->data());
}

}  // namespace

std::vector<TaggedCandidate> ApplyVetoRules(
    std::vector<TaggedCandidate> candidates, const VetoConfig& config,
    CleaningStats* stats) {
  // Callers that do not care about telemetry may pass null.
  CleaningStats scratch;
  if (stats == nullptr) stats = &scratch;
  stats->input += candidates.size();
  std::vector<TaggedCandidate> survivors;
  survivors.reserve(candidates.size());

  // Rules (i), (ii), (iv) are per-candidate.
  for (auto& c : candidates) {
    if (IsSymbolEntity(c)) {
      ++stats->veto_symbol;
      continue;
    }
    if (IsMarkup(c)) {
      ++stats->veto_markup;
      continue;
    }
    if (text::Utf8Length(c.value_display) >
        static_cast<size_t>(config.max_value_chars)) {
      ++stats->veto_long;
      continue;
    }
    survivors.push_back(std::move(c));
  }

  // Rule (iii): per attribute, keep the top fraction of entities by the
  // number of items tagged with them.
  std::unordered_map<std::string, std::vector<size_t>> by_attr;
  for (size_t i = 0; i < survivors.size(); ++i) {
    by_attr[survivors[i].attribute].push_back(i);
  }
  std::unordered_set<size_t> drop;
  for (auto& [attribute, indices] : by_attr) {
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      if (survivors[a].item_count != survivors[b].item_count) {
        return survivors[a].item_count > survivors[b].item_count;
      }
      return survivors[a].value_display < survivors[b].value_display;
    });
    const size_t keep = static_cast<size_t>(
        std::ceil(config.unpopular_keep_fraction *
                  static_cast<double>(indices.size())));
    for (size_t k = keep; k < indices.size(); ++k) {
      drop.insert(indices[k]);
      ++stats->veto_unpopular;
    }
  }
  std::vector<TaggedCandidate> out;
  out.reserve(survivors.size() - drop.size());
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (drop.count(i) == 0) out.push_back(std::move(survivors[i]));
  }
  return out;
}

void RecordCleaningMetrics(const CleaningStats& stats) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  metrics.GetCounter("cleaning.input")
      ->Add(static_cast<int64_t>(stats.input));
  metrics.GetCounter("cleaning.veto_symbol")
      ->Add(static_cast<int64_t>(stats.veto_symbol));
  metrics.GetCounter("cleaning.veto_markup")
      ->Add(static_cast<int64_t>(stats.veto_markup));
  metrics.GetCounter("cleaning.veto_unpopular")
      ->Add(static_cast<int64_t>(stats.veto_unpopular));
  metrics.GetCounter("cleaning.veto_long")
      ->Add(static_cast<int64_t>(stats.veto_long));
  metrics.GetCounter("cleaning.semantic_removed")
      ->Add(static_cast<int64_t>(stats.semantic_removed));
}

SemanticCleaner::SemanticCleaner(Config config) : config_(config) {}

std::string SemanticCleaner::MergedToken(
    const std::vector<std::string>& tokens) {
  if (tokens.size() == 1) return tokens[0];
  return StrJoin(tokens, "_");
}

Status SemanticCleaner::Train(const ProcessedCorpus& corpus,
                              const std::vector<SeedPair>& merge_values) {
  // Merge multiword values into single tokens via the distant
  // supervisor, then feed all sentences to word2vec.
  DistantSupervisor merger(merge_values);
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(corpus.pages.size() * 6);
  for (const ProcessedPage& page : corpus.pages) {
    for (const text::LabeledSequence& sentence : page.sentences) {
      text::LabeledSequence work = sentence;
      merger.Label(&work);
      std::vector<text::ValueSpan> spans = text::DecodeBioSpans(work.labels);
      std::vector<std::string> merged;
      merged.reserve(work.tokens.size());
      size_t t = 0;
      size_t span_idx = 0;
      while (t < work.tokens.size()) {
        if (span_idx < spans.size() && spans[span_idx].begin == t) {
          std::vector<std::string> value_tokens(
              work.tokens.begin() + static_cast<long>(spans[span_idx].begin),
              work.tokens.begin() + static_cast<long>(spans[span_idx].end));
          merged.push_back(MergedToken(value_tokens));
          t = spans[span_idx].end;
          ++span_idx;
        } else {
          merged.push_back(work.tokens[t]);
          ++t;
        }
      }
      sentences.push_back(std::move(merged));
    }
  }
  model_ = embed::Word2Vec(config_.word2vec);
  PAE_RETURN_IF_ERROR(model_.Train(sentences));
  if (config_.quantize_int8) model_.QuantizeInPlace();
  trained_ = true;
  return Status::Ok();
}

std::vector<std::string> SemanticCleaner::BuildCore(
    const std::vector<std::vector<std::string>>& known) const {
  std::vector<std::string> in_vocab;
  for (const auto& tokens : known) {
    std::string merged = MergedToken(tokens);
    if (model_.Contains(merged)) in_vocab.push_back(merged);
  }
  if (config_.core_size <= 0 ||
      static_cast<int>(in_vocab.size()) <= config_.core_size) {
    return in_vocab;
  }
  // Iteratively discard the value with the lowest total cosine
  // similarity to the rest until core_size remain (§V-C step ii/iii).
  // The pairwise similarity matrix is computed once (O(n² d) through
  // the MatVec kernel) and the per-value totals are maintained by
  // subtraction as members drop out — the historical code recomputed
  // every pair with fresh norms on every elimination round.
  const size_t n = in_vocab.size();
  const size_t d = model_.dim();
  const CoreMatrix cm = BuildCoreMatrix(model_, in_vocab);
  math::Matrix sims(n, n);
  for (size_t i = 0; i < n; ++i) {
    math::kernels::MatVec(cm.normalized.data().data(), n, d,
                          cm.normalized.Row(i), sims.Row(i));
  }
  std::vector<double> total(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = sims.Row(i);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) total[i] += row[j];
    }
  }
  std::vector<bool> alive(n, true);
  size_t remaining = n;
  while (remaining > static_cast<size_t>(config_.core_size)) {
    double worst_score = 1e300;
    size_t worst = 0;
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && total[i] < worst_score) {
        worst_score = total[i];
        worst = i;
      }
    }
    alive[worst] = false;
    --remaining;
    for (size_t j = 0; j < n; ++j) {
      if (alive[j]) total[j] -= sims.at(j, worst);
    }
  }
  std::vector<std::string> core;
  core.reserve(remaining);
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) core.push_back(in_vocab[i]);
  }
  return core;
}

std::vector<TaggedCandidate> SemanticCleaner::Filter(
    const std::vector<TaggedCandidate>& candidates,
    const std::unordered_map<std::string,
                             std::vector<std::vector<std::string>>>&
        known_values,
    CleaningStats* stats) const {
  PAE_CHECK(trained_);
  CleaningStats scratch;
  if (stats == nullptr) stats = &scratch;
  // One core per attribute, with its embedding rows normalized once for
  // the whole pass — every candidate and cohesion score below reuses
  // the cached unit rows instead of recomputing norms per pair.
  std::unordered_map<std::string, CoreMatrix> cores;
  for (const auto& [attribute, known] : known_values) {
    cores.emplace(attribute, BuildCoreMatrix(model_, BuildCore(known)));
  }

  // Multiplicative combination of the cosine similarities of all core
  // elements with the value (footnote 4): geometric mean of the
  // similarities mapped to (0, 1).
  std::vector<float> sims;
  auto score_against = [&](const std::string& merged, const float* vec,
                           const CoreMatrix& core) -> double {
    CoreCosines(core, vec, model_.dim(), &sims);
    double log_sum = 0;
    int n = 0;
    for (size_t i = 0; i < core.values.size(); ++i) {
      if (core.values[i] == merged) continue;
      const double mapped =
          std::max(1e-6, (static_cast<double>(sims[i]) + 1.0) / 2.0);
      log_sum += std::log(mapped);
      ++n;
    }
    return (n > 0) ? std::exp(log_sum / n) : 1.0;
  };

  // Per-attribute cohesion: how similar core members are to each other.
  // The acceptance bar self-calibrates to it.
  std::unordered_map<std::string, double> cohesion;
  for (const auto& [attribute, core] : cores) {
    if (static_cast<int>(core.values.size()) < config_.min_core_values) {
      continue;
    }
    double total = 0;
    for (const std::string& member : core.values) {
      total += score_against(member, model_.Vector(member), core);
    }
    cohesion[attribute] = total / static_cast<double>(core.values.size());
  }

  std::vector<TaggedCandidate> out;
  out.reserve(candidates.size());
  for (const TaggedCandidate& c : candidates) {
    auto core_it = cores.find(c.attribute);
    if (core_it == cores.end() ||
        static_cast<int>(core_it->second.values.size()) <
            config_.min_core_values) {
      out.push_back(c);  // no reliable core: keep
      continue;
    }
    const std::string merged = MergedToken(c.value_tokens);
    const float* vec = model_.Vector(merged);
    if (vec == nullptr) {
      out.push_back(c);  // too rare for the embedding space: keep
      continue;
    }
    const double score = score_against(merged, vec, core_it->second);
    const double bar = std::max(
        config_.threshold, config_.relative_alpha * cohesion[c.attribute]);
    if (score < bar) {
      ++stats->semantic_removed;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace pae::core
