#include "core/normalize.h"

#include "text/char_class.h"
#include "text/utf8.h"

namespace pae::core {

std::string NormalizeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  AppendNormalizedValue(value, &out);
  return out;
}

void AppendNormalizedValue(std::string_view value, std::string* out) {
  size_t pos = 0;
  while (pos < value.size()) {
    char32_t cp = text::NextCodepoint(value, &pos);
    if (text::ClassifyChar(cp) == text::CharClass::kSpace) continue;
    if (cp >= U'A' && cp <= U'Z') cp = cp - U'A' + U'a';
    text::AppendUtf8(cp, out);
  }
}

std::string PairKey(std::string_view attribute, std::string_view value) {
  std::string key(attribute);
  key.push_back('\t');
  key.append(value);
  return key;
}

}  // namespace pae::core
