#ifndef PAE_CORE_NORMALIZE_H_
#define PAE_CORE_NORMALIZE_H_

#include <string>
#include <string_view>

namespace pae::core {

/// Canonical value form used when comparing extracted values against the
/// truth sample: all whitespace (ASCII and ideographic) removed, ASCII
/// letters lowercased. Detokenization differences ("2,5 kg" vs "2,5kg")
/// must not affect the verdict.
std::string NormalizeValue(std::string_view value);

/// Appends NormalizeValue(value) to `*out` without the return-value
/// temporary — the per-entry hot path of the streaming candidate
/// harvest (core/ingest.cc) builds its interner keys in a reused
/// scratch buffer.
void AppendNormalizedValue(std::string_view value, std::string* out);

/// Key used in pair/triple lookup maps: `attr` and `value` joined with a
/// '\t' (values are normalized by the caller).
std::string PairKey(std::string_view attribute, std::string_view value);

}  // namespace pae::core

#endif  // PAE_CORE_NORMALIZE_H_
