#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <fstream>

#include "core/corpus_io.h"
#include "core/model_artifact.h"
#include "core/normalize.h"
#include "crf/crf_tagger.h"
#include "html/parser.h"
#include "text/sentence.h"
#include "util/strings.h"

namespace pae::core {

std::vector<double> RequestLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-5; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
  }
  bounds.push_back(10.0);
  return bounds;
}

namespace {

/// Live Scratch count backing the engine.scratch_live gauge. A gauge is
/// last-write-wins, so the atomic holds the truth and every
/// create/destroy republishes it.
std::atomic<int64_t> g_live_scratches{0};

void PublishScratchGauge() {
  util::MetricsRegistry::Global()
      .GetGauge("engine.scratch_live")
      ->Set(static_cast<double>(
          g_live_scratches.load(std::memory_order_relaxed)));
}

}  // namespace

ExtractionEngine::Scratch::Scratch() {
  util::MetricsRegistry::Global()
      .GetCounter("engine.scratch_created")
      ->Increment();
  g_live_scratches.fetch_add(1, std::memory_order_relaxed);
  PublishScratchGauge();
}

ExtractionEngine::Scratch::~Scratch() {
  g_live_scratches.fetch_sub(1, std::memory_order_relaxed);
  PublishScratchGauge();
}

std::unique_ptr<ExtractionEngine::Scratch> ExtractionEngine::NewScratch() {
  return std::unique_ptr<Scratch>(new Scratch());
}

ExtractionEngine::ExtractionEngine(
    std::shared_ptr<const text::SequenceTagger> tagger,
    text::Language language,
    const std::vector<std::string>& tokenizer_lexicon,
    const text::PosLexicon& pos_lexicon, EngineOptions options)
    : tagger_(std::move(tagger)),
      language_(language),
      tokenizer_(text::MakeTokenizer(language, tokenizer_lexicon)),
      pos_tagger_(std::make_unique<text::PosTagger>(language, pos_lexicon)),
      negation_(language),
      options_(std::move(options)) {
  PAE_CHECK(tagger_ != nullptr);
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  metrics.GetCounter("engine.snapshots_built")->Increment();
  requests_counter_ = metrics.GetCounter("engine.requests");
  triples_counter_ = metrics.GetCounter("engine.request_triples");
  latency_histogram_ =
      metrics.GetHistogram("engine.request.seconds", RequestLatencyBounds());
}

ExtractionEngine::~ExtractionEngine() = default;

std::vector<Triple> ExtractionEngine::Extract(
    std::string_view product_id, std::string_view html, Scratch* scratch,
    EngineRequestStats* stats) const {
  util::ScopedTimer timer(latency_histogram_);
  std::unique_ptr<Scratch> owned;
  if (scratch == nullptr) {
    owned = NewScratch();
    scratch = owned.get();
  }
  EngineRequestStats local;

  // Request-sized preprocessing with snapshot-owned resources: parse the
  // page, split sentences, tokenize + PoS-tag into reused buffers. The
  // sentence structs keep their vector capacity across requests.
  std::unique_ptr<html::HtmlNode> dom = html::ParseHtml(html);
  const std::string raw_text = html::ExtractText(*dom);
  size_t n_sentences = 0;
  int sentence_index = 0;
  for (const std::string& sentence : text::SplitSentences(raw_text)) {
    std::vector<std::string> tokens = tokenizer_->Tokenize(sentence);
    if (tokens.empty()) continue;
    if (n_sentences == scratch->sentences_.size()) {
      scratch->sentences_.emplace_back();
    }
    text::LabeledSequence& seq = scratch->sentences_[n_sentences++];
    seq.tokens = std::move(tokens);
    seq.pos = pos_tagger_->Tag(seq.tokens);
    seq.labels.clear();
    seq.sentence_index = sentence_index++;
  }

  // Tag → decode spans → filter → dedup, in the exact order
  // ExtractWithModel visits a one-page corpus, so the two paths stay
  // byte-identical for the same model generation.
  scratch->pending_.clear();
  for (size_t i = 0; i < n_sentences; ++i) {
    const text::LabeledSequence& sentence = scratch->sentences_[i];
    ++local.sentences;
    if (options_.negation_filtering &&
        negation_.IsNegated(sentence.tokens)) {
      ++local.negation_dropped;
      continue;
    }
    const text::SequenceTagger::ScoredPrediction scored =
        tagger_->PredictScored(sentence);
    for (const text::ValueSpan& span :
         text::DecodeBioSpans(scored.labels)) {
      if (options_.min_span_confidence > 0) {
        double min_conf = 1.0;
        for (size_t k = span.begin; k < span.end; ++k) {
          min_conf = std::min(min_conf, scored.confidence[k]);
        }
        if (min_conf < options_.min_span_confidence) {
          ++local.confidence_dropped;
          continue;
        }
      }
      ++local.spans;
      scratch->value_tokens_.assign(
          sentence.tokens.begin() + static_cast<long>(span.begin),
          sentence.tokens.begin() + static_cast<long>(span.end));
      const std::string display =
          language_ == text::Language::kJa
              ? StrJoin(scratch->value_tokens_, "")
              : StrJoin(scratch->value_tokens_, " ");
      std::string key = PairKey(span.attribute, NormalizeValue(display));
      if (!options_.accepted_pairs.empty() &&
          options_.accepted_pairs.count(key) == 0) {
        continue;
      }
      scratch->pending_.push_back(Scratch::Pending{
          Triple{std::string(product_id), span.attribute, display},
          std::move(key)});
    }
  }

  std::vector<Triple> out;
  scratch->seen_.clear();
  for (Scratch::Pending& p : scratch->pending_) {
    if (!scratch->seen_.insert(p.pair_key).second) continue;
    out.push_back(std::move(p.triple));
  }
  local.triples = static_cast<int64_t>(out.size());

  requests_counter_->Increment();
  triples_counter_->Add(local.triples);
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::shared_ptr<const ExtractionEngine>> LoadCrfEngine(
    const std::string& model_path, const std::string& resources_dir,
    EngineOptions options, bool load_accepted_pairs) {
  auto tagger = std::make_shared<crf::CrfTagger>();
  if (IsPaezFile(model_path)) {
    // Zero-copy path: map the artifact and bind views in place. The only
    // model-sized bytes this publishes are shared file pages, which the
    // model.load.bytes_copied counter proves (labels only).
    Result<std::shared_ptr<const ModelArtifact>> artifact =
        ModelArtifact::Open(model_path);
    if (!artifact.ok()) return artifact.status();
    Result<crf::PackedCrfModel> packed =
        MakePackedCrfModel(std::move(artifact).value());
    if (!packed.ok()) return packed.status();
    PAE_RETURN_IF_ERROR(tagger->LoadPacked(std::move(packed).value()));
  } else {
    PAE_RETURN_IF_ERROR(tagger->Load(model_path));
  }

  Result<CorpusResources> resources = LoadCorpusResources(resources_dir);
  if (!resources.ok()) return resources.status();

  if (load_accepted_pairs && options.accepted_pairs.empty()) {
    std::ifstream pairs(model_path + ".pairs");
    for (std::string line; std::getline(pairs, line);) {
      if (!line.empty()) options.accepted_pairs.insert(line);
    }
  }

  return std::shared_ptr<const ExtractionEngine>(
      std::make_shared<ExtractionEngine>(
          std::move(tagger), resources.value().language,
          resources.value().tokenizer_lexicon,
          resources.value().pos_lexicon, std::move(options)));
}

}  // namespace pae::core
