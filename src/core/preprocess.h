#ifndef PAE_CORE_PREPROCESS_H_
#define PAE_CORE_PREPROCESS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/document.h"
#include "core/tagging.h"
#include "core/types.h"

namespace pae::core {

/// One distinct <attribute-surface, value> pair harvested from
/// dictionary tables, with its support.
struct CandidatePair {
  std::string attribute;  // surface name as written by merchants
  std::string value;
  int count = 0;                          // occurrences across pages
  std::vector<std::string> product_ids;   // pages it came from
};

/// The raw candidate set (§V-A "candidate_discovery").
struct CandidateSet {
  std::vector<CandidatePair> pairs;
};

/// Harvests attribute/value candidates from every dictionary table of
/// the corpus.
CandidateSet DiscoverCandidates(const ProcessedCorpus& corpus);

/// Clusters redundant attribute surface names (製造元 vs メーカー) with
/// the value-overlap confidence score of Charron et al. [4]: two
/// attributes are similar if they share many values relative to their
/// maximum range size, discounted when the ranges have comparable size.
struct AggregationConfig {
  double threshold = 0.22;
  double comparable_range_discount = 0.3;  // λ in score = conf·(1 − λ·min/max)
};

/// surface name → cluster representative (the highest-support surface).
std::unordered_map<std::string, std::string> AggregateAttributes(
    const CandidateSet& candidates, const AggregationConfig& config);

/// Knobs of the full §V-A seed construction.
struct PreprocessConfig {
  AggregationConfig aggregation;
  /// Value cleaning: a value survives if it appears in the query log or
  /// occurs at least this often in the pages.
  int value_min_count = 3;
  /// Value diversification (§V-A): number of most-frequent PoS-tag
  /// sequences per attribute (k) and values sampled per sequence (n).
  bool enable_diversification = true;
  int diversify_top_shapes = 4;
  int diversify_values_per_shape = 5;
  /// A PoS shape is only trusted when its total candidate support
  /// reaches this count. Legitimate attributes concentrate on a few
  /// high-support shapes ("NUM|UNIT"); junk table rows (remarks,
  /// shipping notes) scatter over near-unique shapes and are excluded.
  int diversify_min_shape_support = 3;
  /// Specialized models (§VIII-D): restrict the seed (and hence the
  /// tagger) to these canonical attribute names; empty = all.
  std::vector<std::string> attribute_filter;
};

/// The constructed seed: cleaned + diversified pairs, the triples they
/// directly yield from tables, and bookkeeping for Table I.
struct Seed {
  /// Final seed pairs, tokenized for distant supervision, ordered by
  /// support (highest first).
  std::vector<SeedPair> pairs;
  /// Triples read directly off dictionary tables for pairs in the seed.
  std::vector<Triple> table_triples;
  /// Representative attribute names present in the seed.
  std::vector<std::string> attributes;
  /// surface → representative mapping used (aggregation output).
  std::unordered_map<std::string, std::string> surface_to_rep;

  // Stats for reporting.
  size_t candidates_before_cleaning = 0;
  size_t pairs_after_cleaning = 0;
  size_t pairs_added_by_diversification = 0;
};

/// Runs the whole §V-A pre-processing chain (Fig. 1 lines 2–4).
Seed BuildSeed(const ProcessedCorpus& corpus, const PreprocessConfig& config);

/// The chain after candidate discovery (aggregation → cleaning →
/// diversification → assembly), for callers that already hold the
/// candidate set — the streaming ingestion (core/ingest.h) harvests it
/// during the parse pass instead of re-walking every table. `BuildSeed`
/// is exactly `DiscoverCandidates` + this.
Seed BuildSeedFromCandidates(const ProcessedCorpus& corpus,
                             const CandidateSet& candidates,
                             const PreprocessConfig& config);

}  // namespace pae::core

#endif  // PAE_CORE_PREPROCESS_H_
