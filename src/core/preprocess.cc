#include "core/preprocess.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/normalize.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace pae::core {

namespace {

/// Union-find over attribute surface names.
class UnionFind {
 public:
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  int Add() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

CandidateSet DiscoverCandidates(const ProcessedCorpus& corpus) {
  // key = surface \t normalized-value
  std::unordered_map<std::string, CandidatePair> pairs;
  for (const ProcessedPage& page : corpus.pages) {
    for (const auto& table : page.tables) {
      for (const auto& [name, value] : table.entries) {
        if (name.empty() || value.empty()) continue;
        const std::string key = PairKey(name, NormalizeValue(value));
        auto [it, inserted] = pairs.emplace(key, CandidatePair{});
        if (inserted) {
          it->second.attribute = name;
          it->second.value = value;
        }
        it->second.count += 1;
        it->second.product_ids.push_back(page.product_id);
      }
    }
  }
  CandidateSet out;
  out.pairs.reserve(pairs.size());
  for (auto& [key, pair] : pairs) out.pairs.push_back(std::move(pair));
  // Deterministic order: by support desc, then name/value.
  std::sort(out.pairs.begin(), out.pairs.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.attribute != b.attribute) return a.attribute < b.attribute;
              return a.value < b.value;
            });
  return out;
}

std::unordered_map<std::string, std::string> AggregateAttributes(
    const CandidateSet& candidates, const AggregationConfig& config) {
  // Collect the value range and total support of each surface name.
  std::map<std::string, std::unordered_set<std::string>> ranges;
  std::map<std::string, int> support;
  for (const auto& pair : candidates.pairs) {
    ranges[pair.attribute].insert(NormalizeValue(pair.value));
    support[pair.attribute] += pair.count;
  }
  std::vector<std::string> names;
  names.reserve(ranges.size());
  for (const auto& [name, range] : ranges) names.push_back(name);

  UnionFind uf;
  for (size_t i = 0; i < names.size(); ++i) uf.Add();

  for (size_t i = 0; i < names.size(); ++i) {
    const auto& vi = ranges[names[i]];
    for (size_t j = i + 1; j < names.size(); ++j) {
      const auto& vj = ranges[names[j]];
      size_t overlap = 0;
      const auto& smaller = vi.size() <= vj.size() ? vi : vj;
      const auto& larger = vi.size() <= vj.size() ? vj : vi;
      for (const auto& v : smaller) {
        if (larger.count(v) > 0) ++overlap;
      }
      if (overlap == 0) continue;
      const double max_range = static_cast<double>(larger.size());
      const double min_range = static_cast<double>(smaller.size());
      const double confidence = static_cast<double>(overlap) / max_range;
      const double discount =
          1.0 - config.comparable_range_discount * (min_range / max_range);
      bool merge = confidence * discount >= config.threshold;
      // Small-corpus subset rule: when one surface's (small) range is
      // mostly contained in a clearly larger one, they are the same
      // attribute written two ways. The range-ratio guard keeps
      // same-sized sibling attributes (optical vs digital zoom; weight
      // vs maximum load) apart.
      if (!merge && overlap >= 2 &&
          static_cast<double>(overlap) / min_range >= 0.6 &&
          min_range / max_range <= 0.67) {
        merge = true;
      }
      if (merge) {
        uf.Union(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }

  // Representative = highest-support surface in the cluster.
  std::unordered_map<int, std::string> rep;
  for (size_t i = 0; i < names.size(); ++i) {
    const int root = uf.Find(static_cast<int>(i));
    auto it = rep.find(root);
    if (it == rep.end() || support[names[i]] > support[it->second]) {
      rep[root] = names[i];
    }
  }
  std::unordered_map<std::string, std::string> out;
  for (size_t i = 0; i < names.size(); ++i) {
    out[names[i]] = rep[uf.Find(static_cast<int>(i))];
  }
  return out;
}

Seed BuildSeed(const ProcessedCorpus& corpus, const PreprocessConfig& config) {
  return BuildSeedFromCandidates(corpus, DiscoverCandidates(corpus), config);
}

Seed BuildSeedFromCandidates(const ProcessedCorpus& corpus,
                             const CandidateSet& candidates,
                             const PreprocessConfig& config) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer timer(metrics.GetHistogram("seed.seconds"));
  Seed seed;
  seed.candidates_before_cleaning = candidates.pairs.size();
  seed.surface_to_rep = AggregateAttributes(candidates, config.aggregation);

  // Re-key candidates under their representative attribute names and
  // merge duplicates that aggregation created.
  std::unordered_map<std::string, CandidatePair> merged;
  for (const auto& pair : candidates.pairs) {
    const std::string& rep = seed.surface_to_rep.at(pair.attribute);
    const std::string key = PairKey(rep, NormalizeValue(pair.value));
    auto [it, inserted] = merged.emplace(key, CandidatePair{});
    if (inserted) {
      it->second.attribute = rep;
      it->second.value = pair.value;
    }
    it->second.count += pair.count;
    for (const auto& pid : pair.product_ids) {
      it->second.product_ids.push_back(pid);
    }
  }
  std::vector<CandidatePair> aggregated;
  aggregated.reserve(merged.size());
  for (auto& [key, pair] : merged) aggregated.push_back(std::move(pair));
  std::sort(aggregated.begin(), aggregated.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.attribute != b.attribute) return a.attribute < b.attribute;
              return a.value < b.value;
            });

  // Optional specialized-model restriction (§VIII-D). Filter entries
  // name attributes by any surface form; translate them through the
  // aggregation map so the cluster is kept whichever synonym won the
  // representative election.
  if (!config.attribute_filter.empty()) {
    std::unordered_set<std::string> keep;
    for (const std::string& wanted : config.attribute_filter) {
      keep.insert(wanted);
      auto it = seed.surface_to_rep.find(wanted);
      if (it != seed.surface_to_rep.end()) keep.insert(it->second);
    }
    std::vector<CandidatePair> filtered;
    for (auto& pair : aggregated) {
      if (keep.count(pair.attribute) > 0) filtered.push_back(std::move(pair));
    }
    aggregated = std::move(filtered);
  }

  // Value cleaning: keep values found in search queries or frequent on
  // the pages.
  std::unordered_set<std::string> queries;
  for (const auto& q : corpus.query_log) queries.insert(NormalizeValue(q));

  std::unordered_set<std::string> kept_keys;  // PairKey(rep, norm value)
  std::vector<const CandidatePair*> kept;
  for (const auto& pair : aggregated) {
    const std::string norm = NormalizeValue(pair.value);
    const bool in_queries = queries.count(norm) > 0;
    const bool frequent = pair.count >= config.value_min_count;
    if (in_queries || frequent) {
      if (kept_keys.insert(PairKey(pair.attribute, norm)).second) {
        kept.push_back(&pair);
      }
    }
  }
  seed.pairs_after_cleaning = kept.size();

  // Value diversification (§V-A): for each attribute take the k most
  // frequent PoS-tag shapes over the *raw* candidate values, then the n
  // most frequent values of each shape, and add them back to the seed.
  if (config.enable_diversification) {
    struct ShapeInfo {
      int count = 0;
      std::vector<const CandidatePair*> values;  // sorted by support later
    };
    std::unordered_map<std::string, std::unordered_map<std::string, ShapeInfo>>
        shapes;  // attribute → shape → info
    for (const auto& pair : aggregated) {
      std::vector<std::string> tokens = corpus.Tokenize(pair.value);
      std::vector<std::string> pos = corpus.pos_tagger->Tag(tokens);
      const std::string shape = StrJoin(pos, "|");
      ShapeInfo& info = shapes[pair.attribute][shape];
      info.count += pair.count;
      info.values.push_back(&pair);
    }
    for (auto& [attribute, shape_map] : shapes) {
      std::vector<std::pair<std::string, ShapeInfo*>> ordered;
      for (auto& [shape, info] : shape_map) ordered.emplace_back(shape, &info);
      std::sort(ordered.begin(), ordered.end(),
                [](const auto& a, const auto& b) {
                  if (a.second->count != b.second->count) {
                    return a.second->count > b.second->count;
                  }
                  return a.first < b.first;
                });
      const int k = std::min<int>(config.diversify_top_shapes,
                                  static_cast<int>(ordered.size()));
      for (int s = 0; s < k; ++s) {
        if (ordered[static_cast<size_t>(s)].second->count <
            config.diversify_min_shape_support) {
          continue;  // untrusted shape (junk rows scatter here)
        }
        auto& values = ordered[static_cast<size_t>(s)].second->values;
        std::sort(values.begin(), values.end(),
                  [](const CandidatePair* a, const CandidatePair* b) {
                    if (a->count != b->count) return a->count > b->count;
                    return a->value < b->value;
                  });
        int added = 0;
        for (const CandidatePair* pair : values) {
          if (added >= config.diversify_values_per_shape) break;
          const std::string key =
              PairKey(pair->attribute, NormalizeValue(pair->value));
          if (kept_keys.insert(key).second) {
            kept.push_back(pair);
            ++seed.pairs_added_by_diversification;
          }
          ++added;
        }
      }
    }
  }

  // Assemble the seed: tokenize values, order by support.
  std::sort(kept.begin(), kept.end(),
            [](const CandidatePair* a, const CandidatePair* b) {
              if (a->count != b->count) return a->count > b->count;
              if (a->attribute != b->attribute) {
                return a->attribute < b->attribute;
              }
              return a->value < b->value;
            });
  std::unordered_set<std::string> attr_seen;
  for (const CandidatePair* pair : kept) {
    SeedPair sp;
    sp.attribute = pair->attribute;
    sp.value_display = pair->value;
    sp.value_tokens = corpus.Tokenize(pair->value);
    if (sp.value_tokens.empty()) continue;
    seed.pairs.push_back(std::move(sp));
    if (attr_seen.insert(pair->attribute).second) {
      seed.attributes.push_back(pair->attribute);
    }
    for (const auto& pid : pair->product_ids) {
      seed.table_triples.push_back(Triple{pid, pair->attribute, pair->value});
    }
  }
  metrics.GetCounter("seed.candidates")
      ->Add(static_cast<int64_t>(seed.candidates_before_cleaning));
  metrics.GetCounter("seed.cleaned_pairs")
      ->Add(static_cast<int64_t>(seed.pairs_after_cleaning));
  metrics.GetCounter("seed.diversified_pairs")
      ->Add(static_cast<int64_t>(seed.pairs_added_by_diversification));
  metrics.GetCounter("seed.pairs")
      ->Add(static_cast<int64_t>(seed.pairs.size()));
  metrics.GetCounter("seed.table_triples")
      ->Add(static_cast<int64_t>(seed.table_triples.size()));
  metrics.GetCounter("seed.attributes")
      ->Add(static_cast<int64_t>(seed.attributes.size()));
  return seed;
}

}  // namespace pae::core
