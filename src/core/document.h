#ifndef PAE_CORE_DOCUMENT_H_
#define PAE_CORE_DOCUMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "html/table_extractor.h"
#include "text/labeled_sequence.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace pae::core {

/// A product page after HTML parsing, sentence splitting, tokenization
/// and PoS tagging — the representation every pipeline module works on.
struct ProcessedPage {
  std::string product_id;
  /// Tokenized + PoS-tagged sentences (title first). `labels` are empty
  /// until the training-set generator / tagger fills them.
  std::vector<text::LabeledSequence> sentences;
  /// Dictionary-form spec tables found on the page (§V-A seed source).
  std::vector<html::DictionaryTable> tables;
};

/// A fully preprocessed corpus plus the language resources needed to
/// tokenize further strings (e.g. seed values during distant
/// supervision).
struct ProcessedCorpus {
  std::string category;
  text::Language language = text::Language::kJa;
  std::vector<ProcessedPage> pages;
  std::vector<std::string> query_log;

  std::unique_ptr<text::Tokenizer> tokenizer;
  std::unique_ptr<text::PosTagger> pos_tagger;

  /// Tokenizes + tags an arbitrary string with the corpus resources.
  std::vector<std::string> Tokenize(const std::string& s) const {
    return tokenizer->Tokenize(s);
  }

  /// Joins tokens back into a surface value (no separator for Japanese,
  /// single spaces otherwise).
  std::string Detokenize(const std::vector<std::string>& tokens) const;
};

/// Parses and linguistically preprocesses every page of `corpus`.
/// `threads` workers parse pages concurrently (0 = all hardware
/// threads, negative clamps to 1); each page fills its own slot, so the
/// result is byte-identical for every thread count.
ProcessedCorpus ProcessCorpus(const Corpus& corpus, int threads = 1);

}  // namespace pae::core

#endif  // PAE_CORE_DOCUMENT_H_
