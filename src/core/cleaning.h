#ifndef PAE_CORE_CLEANING_H_
#define PAE_CORE_CLEANING_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/document.h"
#include "core/tagging.h"
#include "embed/word2vec.h"
#include "util/status.h"

namespace pae::core {

/// A distinct <attribute, value> the tagger proposed this iteration,
/// aggregated over all pages.
struct TaggedCandidate {
  std::string attribute;
  std::string value_display;
  std::vector<std::string> value_tokens;
  int item_count = 0;  // number of distinct products tagged with it
};

/// Per-iteration cleaning telemetry (reported by the ablation bench;
/// §VIII-B quotes veto rules discarding ≈10 % of first-iteration
/// candidates).
struct CleaningStats {
  size_t input = 0;
  size_t veto_symbol = 0;
  size_t veto_markup = 0;
  size_t veto_unpopular = 0;
  size_t veto_long = 0;
  size_t semantic_removed = 0;

  size_t vetoed() const {
    return veto_symbol + veto_markup + veto_unpopular + veto_long;
  }
};

/// The four domain-independent veto rules of §V-C. Note they state what
/// values must NOT be, never what they must be (the paper's contrast
/// with Carlson et al.).
struct VetoConfig {
  /// (iv) values longer than this many code points are vetoed.
  int max_value_chars = 30;
  /// (iii) per attribute, order values by item count and keep only this
  /// top fraction.
  double unpopular_keep_fraction = 0.8;
};

/// Applies the veto rules; returns the surviving candidates and
/// accumulates counts into `stats` (null `stats` is allowed and simply
/// discards the telemetry).
std::vector<TaggedCandidate> ApplyVetoRules(
    std::vector<TaggedCandidate> candidates, const VetoConfig& config,
    CleaningStats* stats);

/// Adds `stats` to the global `cleaning.*` metrics counters so no
/// cleaning decision is ever silently discarded.
void RecordCleaningMetrics(const CleaningStats& stats);

/// Semantic-drift control (§V-C): a word2vec model is retrained on the
/// current corpus each iteration (with multiword values merged into
/// single tokens), a semantic core is built per attribute from the
/// already-accepted values, and new values too dissimilar from the core
/// are removed.
class SemanticCleaner {
 public:
  struct Config {
    /// Core size n (§VIII-B parameter study). <= 0 means "no
    /// restriction": the whole known-value set is the core.
    int core_size = 10;
    /// Absolute floor: values scoring below this multiplicative
    /// similarity (geometric mean of (cos+1)/2 over the core) are
    /// always removed once a core exists.
    double threshold = 0.30;
    /// Relative test: a value must reach this fraction of the core's
    /// own cohesion (the mean score of core members against the rest of
    /// the core). Self-calibrates across categories and embedding
    /// quality.
    double relative_alpha = 0.85;
    /// Attributes with fewer known in-vocabulary values than this are
    /// not semantically filtered (no reliable core).
    int min_core_values = 3;
    embed::Word2VecOptions word2vec = DefaultWord2Vec();
    /// Round-trip the trained vectors through per-row int8 quantization
    /// (Word2Vec::QuantizeInPlace) before any similarity query — the
    /// exact values an int8 `.paez` embedding section serves. The
    /// accuracy gate for quantized artifacts flips this on and asserts
    /// cleaning decisions are unchanged on the golden corpus.
    bool quantize_int8 = false;

    /// The drift filter must judge values seen only once (merged
    /// multiword candidates are often singletons) and needs sharp
    /// topical vectors on small per-iteration corpora, hence
    /// min_count 1 and a longer, more aggressive training schedule
    /// than the word2vec defaults.
    static embed::Word2VecOptions DefaultWord2Vec() {
      embed::Word2VecOptions options;
      options.min_count = 1;
      options.epochs = 12;
      options.dim = 32;
      options.window = 5;
      options.learning_rate = 0.05f;
      return options;
    }
  };

  explicit SemanticCleaner(Config config);

  /// Trains this iteration's embedding model. `merge_values` lists every
  /// value (known and candidate) whose multiword occurrences should be
  /// merged to a single token before training (§V-C step i).
  Status Train(const ProcessedCorpus& corpus,
               const std::vector<SeedPair>& merge_values);

  /// Filters `candidates` against per-attribute cores built from
  /// `known_values` (attribute → accepted value token-lists).
  std::vector<TaggedCandidate> Filter(
      const std::vector<TaggedCandidate>& candidates,
      const std::unordered_map<std::string,
                               std::vector<std::vector<std::string>>>&
          known_values,
      CleaningStats* stats) const;

  /// Token used in the embedding space for a (possibly multiword) value.
  static std::string MergedToken(const std::vector<std::string>& tokens);

  const embed::Word2Vec& model() const { return model_; }

 private:
  /// Builds the semantic core of one attribute: the `core_size` most
  /// mutually similar known values (iterative farthest-point removal).
  std::vector<std::string> BuildCore(
      const std::vector<std::vector<std::string>>& known) const;

  Config config_;
  embed::Word2Vec model_;
  bool trained_ = false;
};

}  // namespace pae::core

#endif  // PAE_CORE_CLEANING_H_
