#include "core/ensemble.h"

#include <algorithm>

#include "util/logging.h"

namespace pae::core {

namespace {

bool SameSpan(const text::ValueSpan& a, const text::ValueSpan& b) {
  return a.attribute == b.attribute && a.begin == b.begin && a.end == b.end;
}

bool Overlaps(const text::ValueSpan& a, const text::ValueSpan& b) {
  return a.begin < b.end && b.begin < a.end;
}

void WriteSpan(const text::ValueSpan& span,
               std::vector<std::string>* labels) {
  (*labels)[span.begin] = text::BeginLabel(span.attribute);
  for (size_t k = span.begin + 1; k < span.end; ++k) {
    (*labels)[k] = text::InsideLabel(span.attribute);
  }
}

}  // namespace

EnsembleTagger::EnsembleTagger(std::unique_ptr<text::SequenceTagger> first,
                               std::unique_ptr<text::SequenceTagger> second,
                               EnsembleMode mode)
    : first_(std::move(first)), second_(std::move(second)), mode_(mode) {
  PAE_CHECK(first_ != nullptr);
  PAE_CHECK(second_ != nullptr);
}

Status EnsembleTagger::Train(const std::vector<text::LabeledSequence>& data) {
  PAE_RETURN_IF_ERROR(first_->Train(data));
  return second_->Train(data);
}

std::string EnsembleTagger::Name() const {
  return std::string("ensemble-") +
         (mode_ == EnsembleMode::kIntersection ? "intersect" : "union") +
         "(" + first_->Name() + "," + second_->Name() + ")";
}

std::vector<std::string> EnsembleTagger::Predict(
    const text::LabeledSequence& seq) const {
  return PredictScored(seq).labels;
}

text::SequenceTagger::ScoredPrediction EnsembleTagger::PredictScored(
    const text::LabeledSequence& seq) const {
  ScoredPrediction a = first_->PredictScored(seq);
  ScoredPrediction b = second_->PredictScored(seq);
  const size_t n = seq.tokens.size();

  std::vector<text::ValueSpan> spans_a = text::DecodeBioSpans(a.labels);
  std::vector<text::ValueSpan> spans_b = text::DecodeBioSpans(b.labels);

  ScoredPrediction out;
  out.labels.assign(n, text::kOutsideLabel);
  out.confidence.assign(n, 1.0);

  if (mode_ == EnsembleMode::kIntersection) {
    for (const text::ValueSpan& span : spans_a) {
      const bool agreed =
          std::any_of(spans_b.begin(), spans_b.end(),
                      [&](const text::ValueSpan& other) {
                        return SameSpan(span, other);
                      });
      if (!agreed) continue;
      WriteSpan(span, &out.labels);
      for (size_t k = span.begin; k < span.end; ++k) {
        out.confidence[k] = std::min(a.confidence[k], b.confidence[k]);
      }
    }
    return out;
  }

  // Union: first member wins conflicts.
  for (const text::ValueSpan& span : spans_a) {
    WriteSpan(span, &out.labels);
    for (size_t k = span.begin; k < span.end; ++k) {
      out.confidence[k] = a.confidence[k];
    }
  }
  for (const text::ValueSpan& span : spans_b) {
    const bool conflicts =
        std::any_of(spans_a.begin(), spans_a.end(),
                    [&](const text::ValueSpan& other) {
                      return Overlaps(span, other);
                    });
    if (conflicts) continue;
    WriteSpan(span, &out.labels);
    for (size_t k = span.begin; k < span.end; ++k) {
      out.confidence[k] = b.confidence[k];
    }
  }
  return out;
}

}  // namespace pae::core
