#include "core/tagging.h"

#include <algorithm>

namespace pae::core {

DistantSupervisor::DistantSupervisor(const std::vector<SeedPair>& pairs) {
  int priority = 0;
  for (const SeedPair& pair : pairs) {
    if (pair.value_tokens.empty()) continue;
    Entry entry;
    entry.tokens = pair.value_tokens;
    entry.attribute = pair.attribute;
    entry.priority = priority++;
    index_[pair.value_tokens[0]].push_back(std::move(entry));
  }
  for (auto& [first, entries] : index_) {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.tokens.size() != b.tokens.size()) {
                         return a.tokens.size() > b.tokens.size();
                       }
                       return a.priority < b.priority;
                     });
  }
}

int DistantSupervisor::Label(text::LabeledSequence* seq) const {
  const size_t n = seq->tokens.size();
  seq->labels.assign(n, text::kOutsideLabel);
  int spans = 0;
  size_t t = 0;
  while (t < n) {
    auto it = index_.find(seq->tokens[t]);
    const Entry* match = nullptr;
    if (it != index_.end()) {
      for (const Entry& entry : it->second) {
        if (t + entry.tokens.size() > n) continue;
        bool ok = true;
        for (size_t k = 1; k < entry.tokens.size(); ++k) {
          if (seq->tokens[t + k] != entry.tokens[k]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          match = &entry;
          break;  // entries are sorted longest-first
        }
      }
    }
    if (match == nullptr) {
      ++t;
      continue;
    }
    seq->labels[t] = text::BeginLabel(match->attribute);
    for (size_t k = 1; k < match->tokens.size(); ++k) {
      seq->labels[t + k] = text::InsideLabel(match->attribute);
    }
    t += match->tokens.size();
    ++spans;
  }
  return spans;
}

}  // namespace pae::core
