#include "core/eval.h"

#include <unordered_set>

#include "core/normalize.h"

namespace pae::core {

namespace {

std::string TripleKey(const std::string& pid, const std::string& attr,
                      const std::string& norm_value) {
  return pid + "\t" + attr + "\t" + norm_value;
}

std::string ProductAttrKey(const std::string& pid, const std::string& attr) {
  return pid + "\t" + attr;
}

}  // namespace

TripleMetrics EvaluateTriples(const std::vector<Triple>& triples,
                              const TruthSample& truth, size_t num_products) {
  // Index the truth sample.
  std::unordered_map<std::string, bool> judged;           // triple → correct
  std::unordered_set<std::string> has_correct_entry;      // (pid, attr)
  for (const TruthEntry& entry : truth.entries) {
    const std::string attr = truth.Canonical(entry.triple.attribute);
    const std::string key = TripleKey(entry.triple.product_id, attr,
                                      NormalizeValue(entry.triple.value));
    // A triple judged correct anywhere wins over an incorrect judgement
    // of the same key (shouldn't happen, but be deterministic).
    auto it = judged.find(key);
    if (it == judged.end()) {
      judged.emplace(key, entry.triple_correct);
    } else if (entry.triple_correct) {
      it->second = true;
    }
    if (entry.triple_correct) {
      has_correct_entry.insert(
          ProductAttrKey(entry.triple.product_id, attr));
    }
  }

  TripleMetrics m;
  std::unordered_set<std::string> seen;     // dedupe system triples
  std::unordered_set<std::string> covered;  // product ids with a triple
  for (const Triple& triple : triples) {
    const std::string attr = truth.Canonical(triple.attribute);
    const std::string norm = NormalizeValue(triple.value);
    const std::string key = TripleKey(triple.product_id, attr, norm);
    if (!seen.insert(key).second) continue;
    ++m.total;
    covered.insert(triple.product_id);

    auto it = judged.find(key);
    if (it != judged.end()) {
      if (it->second) {
        ++m.correct;
      } else {
        ++m.incorrect;
      }
    } else if (has_correct_entry.count(
                   ProductAttrKey(triple.product_id, attr)) > 0) {
      ++m.maybe_incorrect;  // same product+attribute, different value
    } else {
      ++m.unjudged;
    }
  }
  const size_t denom = m.correct + m.incorrect + m.maybe_incorrect;
  m.precision = denom > 0 ? 100.0 * static_cast<double>(m.correct) /
                                static_cast<double>(denom)
                          : 0.0;
  m.covered_products = covered.size();
  m.coverage = num_products > 0
                   ? 100.0 * static_cast<double>(covered.size()) /
                         static_cast<double>(num_products)
                   : 0.0;
  m.triples_per_product =
      num_products > 0
          ? static_cast<double>(m.total) / static_cast<double>(num_products)
          : 0.0;
  return m;
}

PairMetrics EvaluatePairs(const std::vector<AttributeValue>& pairs,
                          const TruthSample& truth) {
  PairMetrics m;
  std::unordered_set<std::string> seen;
  for (const AttributeValue& pair : pairs) {
    const std::string attr = truth.Canonical(pair.attribute);
    const std::string key = PairKey(attr, NormalizeValue(pair.value));
    if (!seen.insert(key).second) continue;
    ++m.total;
    if (truth.valid_pairs.count(key) > 0) ++m.valid;
  }
  m.precision = m.total > 0 ? 100.0 * static_cast<double>(m.valid) /
                                  static_cast<double>(m.total)
                            : 0.0;
  return m;
}

std::unordered_map<std::string, double> PerAttributeCoverage(
    const std::vector<Triple>& triples, const TruthSample& truth,
    size_t num_products) {
  std::unordered_map<std::string, std::unordered_set<std::string>> products;
  for (const Triple& triple : triples) {
    products[truth.Canonical(triple.attribute)].insert(triple.product_id);
  }
  std::unordered_map<std::string, double> out;
  for (const auto& [attr, pids] : products) {
    out[attr] = num_products > 0
                    ? 100.0 * static_cast<double>(pids.size()) /
                          static_cast<double>(num_products)
                    : 0.0;
  }
  return out;
}

OracleMetrics EvaluateOracleRecall(const std::vector<Triple>& triples,
                                   const TruthSample& truth) {
  // Distinct correct truth triples, keyed canonically.
  std::unordered_set<std::string> truth_keys;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      truth_by_attribute;
  for (const TruthEntry& entry : truth.entries) {
    if (!entry.triple_correct) continue;
    const std::string attr = truth.Canonical(entry.triple.attribute);
    const std::string key = TripleKey(entry.triple.product_id, attr,
                                      NormalizeValue(entry.triple.value));
    truth_keys.insert(key);
    truth_by_attribute[attr].insert(key);
  }

  std::unordered_set<std::string> found;
  for (const Triple& triple : triples) {
    const std::string attr = truth.Canonical(triple.attribute);
    const std::string key = TripleKey(triple.product_id, attr,
                                      NormalizeValue(triple.value));
    if (truth_keys.count(key) > 0) found.insert(key);
  }

  OracleMetrics m;
  m.truth_triples = truth_keys.size();
  m.recalled = found.size();
  m.recall = m.truth_triples > 0
                 ? 100.0 * static_cast<double>(m.recalled) /
                       static_cast<double>(m.truth_triples)
                 : 0.0;
  for (const auto& [attr, keys] : truth_by_attribute) {
    size_t hit = 0;
    for (const std::string& key : keys) {
      if (found.count(key) > 0) ++hit;
    }
    m.recall_by_attribute[attr] =
        100.0 * static_cast<double>(hit) / static_cast<double>(keys.size());
  }
  return m;
}

AttributeDiscoveryMetrics EvaluateAttributeDiscovery(
    const std::vector<std::string>& system_attributes,
    const TruthSample& truth) {
  std::unordered_set<std::string> canonical;
  for (const auto& [surface, canon] : truth.attribute_aliases) {
    canonical.insert(canon);
  }
  AttributeDiscoveryMetrics m;
  m.truth_attributes = canonical.size();
  std::unordered_set<std::string> discovered;
  for (const std::string& attribute : system_attributes) {
    auto it = truth.attribute_aliases.find(attribute);
    if (it == truth.attribute_aliases.end()) {
      ++m.spurious;
    } else {
      discovered.insert(it->second);
    }
  }
  m.discovered = discovered.size();
  m.recall = m.truth_attributes > 0
                 ? 100.0 * static_cast<double>(m.discovered) /
                       static_cast<double>(m.truth_attributes)
                 : 0.0;
  return m;
}

}  // namespace pae::core
