#include "core/document.h"

#include "html/parser.h"
#include "text/sentence.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace pae::core {

std::string ProcessedCorpus::Detokenize(
    const std::vector<std::string>& tokens) const {
  return language == text::Language::kJa ? StrJoin(tokens, "")
                                         : StrJoin(tokens, " ");
}

ProcessedCorpus ProcessCorpus(const Corpus& corpus, int threads) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer timer(metrics.GetHistogram("preprocess.seconds"));
  ProcessedCorpus out;
  out.category = corpus.category;
  out.language = corpus.language;
  out.query_log = corpus.query_log;
  out.tokenizer = text::MakeTokenizer(corpus.language,
                                      corpus.tokenizer_lexicon);
  out.pos_tagger = std::make_unique<text::PosTagger>(corpus.language,
                                                     corpus.pos_lexicon);
  out.pages.resize(corpus.pages.size());

  // Pages are independent: each worker parses into its own slot. The
  // tokenizer and PoS tagger are shared but stateless after
  // construction, so concurrent reads are safe.
  util::ThreadPool pool(util::ThreadPool::ResolveThreads(threads));
  pool.ParallelFor(0, corpus.pages.size(), 1, [&](size_t p) {
    const ProductPage& page = corpus.pages[p];
    ProcessedPage& processed = out.pages[p];
    processed.product_id = page.product_id;

    std::unique_ptr<html::HtmlNode> dom = html::ParseHtml(page.html);
    processed.tables = html::ExtractDictionaryTables(*dom);

    const std::string raw_text = html::ExtractText(*dom);
    int sentence_index = 0;
    for (const std::string& sentence : text::SplitSentences(raw_text)) {
      text::LabeledSequence seq;
      seq.tokens = out.tokenizer->Tokenize(sentence);
      if (seq.tokens.empty()) continue;
      seq.pos = out.pos_tagger->Tag(seq.tokens);
      seq.sentence_index = sentence_index++;
      processed.sentences.push_back(std::move(seq));
    }
  });
  // Totals are summed sequentially after the parallel loop so they are
  // deterministic and no worker contends on a shared counter.
  int64_t sentences = 0, tables = 0;
  for (const ProcessedPage& page : out.pages) {
    sentences += static_cast<int64_t>(page.sentences.size());
    tables += static_cast<int64_t>(page.tables.size());
  }
  metrics.GetCounter("preprocess.pages")
      ->Add(static_cast<int64_t>(out.pages.size()));
  metrics.GetCounter("preprocess.sentences")->Add(sentences);
  metrics.GetCounter("preprocess.tables")->Add(tables);
  return out;
}

}  // namespace pae::core
