#ifndef PAE_CORE_TAGGING_H_
#define PAE_CORE_TAGGING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/labeled_sequence.h"

namespace pae::core {

/// One seed <attribute, value> pair prepared for matching: the value is
/// pre-tokenized with the corpus tokenizer so that matches align with
/// sentence tokens.
struct SeedPair {
  std::string attribute;
  std::vector<std::string> value_tokens;
  std::string value_display;
};

/// Labels sentences by exact token-sequence match against the seed
/// (training-set generation, §V-A line 5): every occurrence of a seed
/// value is tagged with its attribute, longest match first,
/// left-to-right, non-overlapping. This distant supervision is
/// deliberately imperfect — e.g. the seed value "5kg" matches inside the
/// token run of "2.5kg" — because that label noise is precisely what the
/// diversification module (§VIII-A) exists to fix.
class DistantSupervisor {
 public:
  /// Pairs listed earlier win ties (same value claimed by two
  /// attributes), so callers should order by seed confidence/frequency.
  explicit DistantSupervisor(const std::vector<SeedPair>& pairs);

  /// Overwrites `seq->labels` with BIO tags. Returns the number of
  /// labeled spans.
  int Label(text::LabeledSequence* seq) const;

 private:
  struct Entry {
    std::vector<std::string> tokens;
    std::string attribute;
    int priority = 0;
  };
  /// first token → candidate entries, longest first.
  std::unordered_map<std::string, std::vector<Entry>> index_;
};

}  // namespace pae::core

#endif  // PAE_CORE_TAGGING_H_
