#ifndef PAE_CORE_ENSEMBLE_H_
#define PAE_CORE_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "text/sequence_tagger.h"

namespace pae::core {

/// How the two member models' predictions are combined.
enum class EnsembleMode {
  /// A span survives only if both members emit it identically
  /// (attribute + boundaries). Maximizes precision.
  kIntersection,
  /// All spans of the first member plus the second member's spans that
  /// do not overlap them. Maximizes coverage.
  kUnion,
};

/// Combination of two sequence taggers (§IX: "RNN and especially the
/// combination of both approaches have much potential"; the paper's
/// future work). Both members are trained on the same data; predictions
/// are merged span-wise according to `mode`.
class EnsembleTagger : public text::SequenceTagger {
 public:
  EnsembleTagger(std::unique_ptr<text::SequenceTagger> first,
                 std::unique_ptr<text::SequenceTagger> second,
                 EnsembleMode mode);

  Status Train(const std::vector<text::LabeledSequence>& data) override;
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override;
  /// Confidence of a combined span is the minimum of the members'
  /// confidences at each position (intersection) or the emitting
  /// member's confidence (union).
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override;
  std::string Name() const override;

 private:
  std::unique_ptr<text::SequenceTagger> first_;
  std::unique_ptr<text::SequenceTagger> second_;
  EnsembleMode mode_;
};

}  // namespace pae::core

#endif  // PAE_CORE_ENSEMBLE_H_
