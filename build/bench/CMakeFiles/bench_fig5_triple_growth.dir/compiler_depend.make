# Empty compiler generated dependencies file for bench_fig5_triple_growth.
# This may be replaced when dependencies are built.
