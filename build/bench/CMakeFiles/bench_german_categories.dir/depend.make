# Empty dependencies file for bench_german_categories.
# This may be replaced when dependencies are built.
