file(REMOVE_RECURSE
  "CMakeFiles/bench_german_categories.dir/bench_german_categories.cc.o"
  "CMakeFiles/bench_german_categories.dir/bench_german_categories.cc.o.d"
  "bench_german_categories"
  "bench_german_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_german_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
