file(REMOVE_RECURSE
  "CMakeFiles/bench_recall_oracle.dir/bench_recall_oracle.cc.o"
  "CMakeFiles/bench_recall_oracle.dir/bench_recall_oracle.cc.o.d"
  "bench_recall_oracle"
  "bench_recall_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recall_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
