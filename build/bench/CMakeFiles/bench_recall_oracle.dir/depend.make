# Empty dependencies file for bench_recall_oracle.
# This may be replaced when dependencies are built.
