# Empty compiler generated dependencies file for bench_fig7_specialized_camera.
# This may be replaced when dependencies are built.
