file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_specialized_camera.dir/bench_fig7_specialized_camera.cc.o"
  "CMakeFiles/bench_fig7_specialized_camera.dir/bench_fig7_specialized_camera.cc.o.d"
  "bench_fig7_specialized_camera"
  "bench_fig7_specialized_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_specialized_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
