file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_seed.dir/bench_table1_seed.cc.o"
  "CMakeFiles/bench_table1_seed.dir/bench_table1_seed.cc.o.d"
  "bench_table1_seed"
  "bench_table1_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
