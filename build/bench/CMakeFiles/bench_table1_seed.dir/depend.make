# Empty dependencies file for bench_table1_seed.
# This may be replaced when dependencies are built.
