file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_triples_per_product.dir/bench_fig4_triples_per_product.cc.o"
  "CMakeFiles/bench_fig4_triples_per_product.dir/bench_fig4_triples_per_product.cc.o.d"
  "bench_fig4_triples_per_product"
  "bench_fig4_triples_per_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_triples_per_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
