# Empty compiler generated dependencies file for bench_fig4_triples_per_product.
# This may be replaced when dependencies are built.
