file(REMOVE_RECURSE
  "CMakeFiles/bench_confidence_tradeoff.dir/bench_confidence_tradeoff.cc.o"
  "CMakeFiles/bench_confidence_tradeoff.dir/bench_confidence_tradeoff.cc.o.d"
  "bench_confidence_tradeoff"
  "bench_confidence_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confidence_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
