# Empty dependencies file for bench_confidence_tradeoff.
# This may be replaced when dependencies are built.
