# Empty dependencies file for bench_fig8_specialized_vacuum.
# This may be replaced when dependencies are built.
