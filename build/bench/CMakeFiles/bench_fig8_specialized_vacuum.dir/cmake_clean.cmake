file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_specialized_vacuum.dir/bench_fig8_specialized_vacuum.cc.o"
  "CMakeFiles/bench_fig8_specialized_vacuum.dir/bench_fig8_specialized_vacuum.cc.o.d"
  "bench_fig8_specialized_vacuum"
  "bench_fig8_specialized_vacuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_specialized_vacuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
