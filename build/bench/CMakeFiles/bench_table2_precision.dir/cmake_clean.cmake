file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_precision.dir/bench_table2_precision.cc.o"
  "CMakeFiles/bench_table2_precision.dir/bench_table2_precision.cc.o.d"
  "bench_table2_precision"
  "bench_table2_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
