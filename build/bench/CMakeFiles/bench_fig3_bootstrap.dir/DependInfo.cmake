
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_bootstrap.cc" "bench/CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cc.o" "gcc" "bench/CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pae_experiment_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/pae_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/pae_html.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/pae_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/lstm/CMakeFiles/pae_lstm.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/pae_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/pae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pae_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
