file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cc.o"
  "CMakeFiles/bench_fig3_bootstrap.dir/bench_fig3_bootstrap.cc.o.d"
  "bench_fig3_bootstrap"
  "bench_fig3_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
