file(REMOVE_RECURSE
  "libpae_experiment_lib.a"
)
