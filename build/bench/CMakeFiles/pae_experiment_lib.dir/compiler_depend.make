# Empty compiler generated dependencies file for pae_experiment_lib.
# This may be replaced when dependencies are built.
