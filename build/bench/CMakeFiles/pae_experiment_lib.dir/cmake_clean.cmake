file(REMOVE_RECURSE
  "CMakeFiles/pae_experiment_lib.dir/experiment_lib.cc.o"
  "CMakeFiles/pae_experiment_lib.dir/experiment_lib.cc.o.d"
  "CMakeFiles/pae_experiment_lib.dir/table23_runner.cc.o"
  "CMakeFiles/pae_experiment_lib.dir/table23_runner.cc.o.d"
  "libpae_experiment_lib.a"
  "libpae_experiment_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_experiment_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
