file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rnn_increase.dir/bench_fig6_rnn_increase.cc.o"
  "CMakeFiles/bench_fig6_rnn_increase.dir/bench_fig6_rnn_increase.cc.o.d"
  "bench_fig6_rnn_increase"
  "bench_fig6_rnn_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rnn_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
