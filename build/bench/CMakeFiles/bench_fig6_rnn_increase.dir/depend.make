# Empty dependencies file for bench_fig6_rnn_increase.
# This may be replaced when dependencies are built.
