file(REMOVE_RECURSE
  "CMakeFiles/bench_full_catalog.dir/bench_full_catalog.cc.o"
  "CMakeFiles/bench_full_catalog.dir/bench_full_catalog.cc.o.d"
  "bench_full_catalog"
  "bench_full_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
