# Empty dependencies file for bench_full_catalog.
# This may be replaced when dependencies are built.
