# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/math_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/html_test[1]_include.cmake")
include("/root/repo/build/tests/crf_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/ensemble_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/apply_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
