file(REMOVE_RECURSE
  "CMakeFiles/camera_attributes.dir/camera_attributes.cpp.o"
  "CMakeFiles/camera_attributes.dir/camera_attributes.cpp.o.d"
  "camera_attributes"
  "camera_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
