# Empty compiler generated dependencies file for camera_attributes.
# This may be replaced when dependencies are built.
