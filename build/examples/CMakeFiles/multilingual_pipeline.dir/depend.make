# Empty dependencies file for multilingual_pipeline.
# This may be replaced when dependencies are built.
