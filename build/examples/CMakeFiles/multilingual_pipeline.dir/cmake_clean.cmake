file(REMOVE_RECURSE
  "CMakeFiles/multilingual_pipeline.dir/multilingual_pipeline.cpp.o"
  "CMakeFiles/multilingual_pipeline.dir/multilingual_pipeline.cpp.o.d"
  "multilingual_pipeline"
  "multilingual_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
