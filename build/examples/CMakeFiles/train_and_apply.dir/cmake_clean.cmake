file(REMOVE_RECURSE
  "CMakeFiles/train_and_apply.dir/train_and_apply.cpp.o"
  "CMakeFiles/train_and_apply.dir/train_and_apply.cpp.o.d"
  "train_and_apply"
  "train_and_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
