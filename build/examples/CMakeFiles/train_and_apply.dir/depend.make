# Empty dependencies file for train_and_apply.
# This may be replaced when dependencies are built.
