file(REMOVE_RECURSE
  "CMakeFiles/custom_category.dir/custom_category.cpp.o"
  "CMakeFiles/custom_category.dir/custom_category.cpp.o.d"
  "custom_category"
  "custom_category.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
