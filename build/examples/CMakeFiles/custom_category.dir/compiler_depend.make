# Empty compiler generated dependencies file for custom_category.
# This may be replaced when dependencies are built.
