file(REMOVE_RECURSE
  "CMakeFiles/pae_text.dir/labeled_sequence.cc.o"
  "CMakeFiles/pae_text.dir/labeled_sequence.cc.o.d"
  "CMakeFiles/pae_text.dir/negation.cc.o"
  "CMakeFiles/pae_text.dir/negation.cc.o.d"
  "CMakeFiles/pae_text.dir/pos_tagger.cc.o"
  "CMakeFiles/pae_text.dir/pos_tagger.cc.o.d"
  "CMakeFiles/pae_text.dir/sentence.cc.o"
  "CMakeFiles/pae_text.dir/sentence.cc.o.d"
  "CMakeFiles/pae_text.dir/tokenizer.cc.o"
  "CMakeFiles/pae_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/pae_text.dir/utf8.cc.o"
  "CMakeFiles/pae_text.dir/utf8.cc.o.d"
  "libpae_text.a"
  "libpae_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
