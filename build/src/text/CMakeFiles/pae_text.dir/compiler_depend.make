# Empty compiler generated dependencies file for pae_text.
# This may be replaced when dependencies are built.
