file(REMOVE_RECURSE
  "libpae_text.a"
)
