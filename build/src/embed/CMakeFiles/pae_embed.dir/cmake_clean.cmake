file(REMOVE_RECURSE
  "CMakeFiles/pae_embed.dir/word2vec.cc.o"
  "CMakeFiles/pae_embed.dir/word2vec.cc.o.d"
  "libpae_embed.a"
  "libpae_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
