# Empty dependencies file for pae_embed.
# This may be replaced when dependencies are built.
