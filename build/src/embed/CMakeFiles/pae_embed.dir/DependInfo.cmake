
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/word2vec.cc" "src/embed/CMakeFiles/pae_embed.dir/word2vec.cc.o" "gcc" "src/embed/CMakeFiles/pae_embed.dir/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/pae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pae_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
