file(REMOVE_RECURSE
  "libpae_embed.a"
)
