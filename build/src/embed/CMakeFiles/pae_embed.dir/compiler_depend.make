# Empty compiler generated dependencies file for pae_embed.
# This may be replaced when dependencies are built.
