file(REMOVE_RECURSE
  "CMakeFiles/pae_lstm.dir/bilstm_tagger.cc.o"
  "CMakeFiles/pae_lstm.dir/bilstm_tagger.cc.o.d"
  "CMakeFiles/pae_lstm.dir/lstm_cell.cc.o"
  "CMakeFiles/pae_lstm.dir/lstm_cell.cc.o.d"
  "libpae_lstm.a"
  "libpae_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
