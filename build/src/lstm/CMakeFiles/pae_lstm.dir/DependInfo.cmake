
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lstm/bilstm_tagger.cc" "src/lstm/CMakeFiles/pae_lstm.dir/bilstm_tagger.cc.o" "gcc" "src/lstm/CMakeFiles/pae_lstm.dir/bilstm_tagger.cc.o.d"
  "/root/repo/src/lstm/lstm_cell.cc" "src/lstm/CMakeFiles/pae_lstm.dir/lstm_cell.cc.o" "gcc" "src/lstm/CMakeFiles/pae_lstm.dir/lstm_cell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/pae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pae_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
