file(REMOVE_RECURSE
  "libpae_lstm.a"
)
