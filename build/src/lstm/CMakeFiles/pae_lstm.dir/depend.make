# Empty dependencies file for pae_lstm.
# This may be replaced when dependencies are built.
