
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apply.cc" "src/core/CMakeFiles/pae_core.dir/apply.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/apply.cc.o.d"
  "/root/repo/src/core/bootstrap.cc" "src/core/CMakeFiles/pae_core.dir/bootstrap.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/bootstrap.cc.o.d"
  "/root/repo/src/core/cleaning.cc" "src/core/CMakeFiles/pae_core.dir/cleaning.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/cleaning.cc.o.d"
  "/root/repo/src/core/corpus_io.cc" "src/core/CMakeFiles/pae_core.dir/corpus_io.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/corpus_io.cc.o.d"
  "/root/repo/src/core/document.cc" "src/core/CMakeFiles/pae_core.dir/document.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/document.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/core/CMakeFiles/pae_core.dir/ensemble.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/ensemble.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/pae_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/eval.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/core/CMakeFiles/pae_core.dir/normalize.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/normalize.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/pae_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/partition.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/core/CMakeFiles/pae_core.dir/preprocess.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/preprocess.cc.o.d"
  "/root/repo/src/core/tagging.cc" "src/core/CMakeFiles/pae_core.dir/tagging.cc.o" "gcc" "src/core/CMakeFiles/pae_core.dir/tagging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pae_text.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/pae_html.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/pae_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/lstm/CMakeFiles/pae_lstm.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/pae_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/pae_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
