# Empty dependencies file for pae_core.
# This may be replaced when dependencies are built.
