file(REMOVE_RECURSE
  "CMakeFiles/pae_core.dir/apply.cc.o"
  "CMakeFiles/pae_core.dir/apply.cc.o.d"
  "CMakeFiles/pae_core.dir/bootstrap.cc.o"
  "CMakeFiles/pae_core.dir/bootstrap.cc.o.d"
  "CMakeFiles/pae_core.dir/cleaning.cc.o"
  "CMakeFiles/pae_core.dir/cleaning.cc.o.d"
  "CMakeFiles/pae_core.dir/corpus_io.cc.o"
  "CMakeFiles/pae_core.dir/corpus_io.cc.o.d"
  "CMakeFiles/pae_core.dir/document.cc.o"
  "CMakeFiles/pae_core.dir/document.cc.o.d"
  "CMakeFiles/pae_core.dir/ensemble.cc.o"
  "CMakeFiles/pae_core.dir/ensemble.cc.o.d"
  "CMakeFiles/pae_core.dir/eval.cc.o"
  "CMakeFiles/pae_core.dir/eval.cc.o.d"
  "CMakeFiles/pae_core.dir/normalize.cc.o"
  "CMakeFiles/pae_core.dir/normalize.cc.o.d"
  "CMakeFiles/pae_core.dir/partition.cc.o"
  "CMakeFiles/pae_core.dir/partition.cc.o.d"
  "CMakeFiles/pae_core.dir/preprocess.cc.o"
  "CMakeFiles/pae_core.dir/preprocess.cc.o.d"
  "CMakeFiles/pae_core.dir/tagging.cc.o"
  "CMakeFiles/pae_core.dir/tagging.cc.o.d"
  "libpae_core.a"
  "libpae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
