file(REMOVE_RECURSE
  "libpae_core.a"
)
