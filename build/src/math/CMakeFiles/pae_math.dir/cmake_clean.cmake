file(REMOVE_RECURSE
  "CMakeFiles/pae_math.dir/matrix.cc.o"
  "CMakeFiles/pae_math.dir/matrix.cc.o.d"
  "libpae_math.a"
  "libpae_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
