# Empty compiler generated dependencies file for pae_math.
# This may be replaced when dependencies are built.
