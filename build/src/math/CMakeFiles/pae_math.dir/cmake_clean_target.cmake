file(REMOVE_RECURSE
  "libpae_math.a"
)
