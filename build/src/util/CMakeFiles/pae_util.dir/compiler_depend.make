# Empty compiler generated dependencies file for pae_util.
# This may be replaced when dependencies are built.
