file(REMOVE_RECURSE
  "CMakeFiles/pae_util.dir/logging.cc.o"
  "CMakeFiles/pae_util.dir/logging.cc.o.d"
  "CMakeFiles/pae_util.dir/serial.cc.o"
  "CMakeFiles/pae_util.dir/serial.cc.o.d"
  "CMakeFiles/pae_util.dir/status.cc.o"
  "CMakeFiles/pae_util.dir/status.cc.o.d"
  "CMakeFiles/pae_util.dir/strings.cc.o"
  "CMakeFiles/pae_util.dir/strings.cc.o.d"
  "CMakeFiles/pae_util.dir/table_printer.cc.o"
  "CMakeFiles/pae_util.dir/table_printer.cc.o.d"
  "libpae_util.a"
  "libpae_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
