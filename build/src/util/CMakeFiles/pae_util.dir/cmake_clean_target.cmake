file(REMOVE_RECURSE
  "libpae_util.a"
)
