file(REMOVE_RECURSE
  "libpae_html.a"
)
