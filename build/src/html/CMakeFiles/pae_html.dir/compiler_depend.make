# Empty compiler generated dependencies file for pae_html.
# This may be replaced when dependencies are built.
