file(REMOVE_RECURSE
  "CMakeFiles/pae_html.dir/parser.cc.o"
  "CMakeFiles/pae_html.dir/parser.cc.o.d"
  "CMakeFiles/pae_html.dir/table_extractor.cc.o"
  "CMakeFiles/pae_html.dir/table_extractor.cc.o.d"
  "libpae_html.a"
  "libpae_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
