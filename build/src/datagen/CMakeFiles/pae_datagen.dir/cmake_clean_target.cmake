file(REMOVE_RECURSE
  "libpae_datagen.a"
)
