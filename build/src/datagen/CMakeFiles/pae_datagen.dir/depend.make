# Empty dependencies file for pae_datagen.
# This may be replaced when dependencies are built.
