file(REMOVE_RECURSE
  "CMakeFiles/pae_datagen.dir/generator.cc.o"
  "CMakeFiles/pae_datagen.dir/generator.cc.o.d"
  "CMakeFiles/pae_datagen.dir/schema.cc.o"
  "CMakeFiles/pae_datagen.dir/schema.cc.o.d"
  "CMakeFiles/pae_datagen.dir/word_factory.cc.o"
  "CMakeFiles/pae_datagen.dir/word_factory.cc.o.d"
  "libpae_datagen.a"
  "libpae_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
