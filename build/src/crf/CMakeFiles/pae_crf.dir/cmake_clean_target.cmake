file(REMOVE_RECURSE
  "libpae_crf.a"
)
