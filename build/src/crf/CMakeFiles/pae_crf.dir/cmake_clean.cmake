file(REMOVE_RECURSE
  "CMakeFiles/pae_crf.dir/crf_model.cc.o"
  "CMakeFiles/pae_crf.dir/crf_model.cc.o.d"
  "CMakeFiles/pae_crf.dir/crf_tagger.cc.o"
  "CMakeFiles/pae_crf.dir/crf_tagger.cc.o.d"
  "CMakeFiles/pae_crf.dir/feature_extractor.cc.o"
  "CMakeFiles/pae_crf.dir/feature_extractor.cc.o.d"
  "CMakeFiles/pae_crf.dir/owlqn.cc.o"
  "CMakeFiles/pae_crf.dir/owlqn.cc.o.d"
  "libpae_crf.a"
  "libpae_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
