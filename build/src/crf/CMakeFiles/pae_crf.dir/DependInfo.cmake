
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/crf_model.cc" "src/crf/CMakeFiles/pae_crf.dir/crf_model.cc.o" "gcc" "src/crf/CMakeFiles/pae_crf.dir/crf_model.cc.o.d"
  "/root/repo/src/crf/crf_tagger.cc" "src/crf/CMakeFiles/pae_crf.dir/crf_tagger.cc.o" "gcc" "src/crf/CMakeFiles/pae_crf.dir/crf_tagger.cc.o.d"
  "/root/repo/src/crf/feature_extractor.cc" "src/crf/CMakeFiles/pae_crf.dir/feature_extractor.cc.o" "gcc" "src/crf/CMakeFiles/pae_crf.dir/feature_extractor.cc.o.d"
  "/root/repo/src/crf/owlqn.cc" "src/crf/CMakeFiles/pae_crf.dir/owlqn.cc.o" "gcc" "src/crf/CMakeFiles/pae_crf.dir/owlqn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/pae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pae_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
