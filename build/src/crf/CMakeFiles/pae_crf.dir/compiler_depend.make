# Empty compiler generated dependencies file for pae_crf.
# This may be replaced when dependencies are built.
