# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("math")
subdirs("text")
subdirs("html")
subdirs("crf")
subdirs("lstm")
subdirs("embed")
subdirs("datagen")
subdirs("core")
