# Empty dependencies file for pae-extract.
# This may be replaced when dependencies are built.
