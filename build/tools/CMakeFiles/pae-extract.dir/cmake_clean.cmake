file(REMOVE_RECURSE
  "CMakeFiles/pae-extract.dir/pae_extract.cc.o"
  "CMakeFiles/pae-extract.dir/pae_extract.cc.o.d"
  "pae-extract"
  "pae-extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae-extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
