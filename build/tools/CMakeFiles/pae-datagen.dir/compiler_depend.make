# Empty compiler generated dependencies file for pae-datagen.
# This may be replaced when dependencies are built.
