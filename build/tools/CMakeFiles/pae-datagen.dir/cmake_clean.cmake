file(REMOVE_RECURSE
  "CMakeFiles/pae-datagen.dir/pae_datagen.cc.o"
  "CMakeFiles/pae-datagen.dir/pae_datagen.cc.o.d"
  "pae-datagen"
  "pae-datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pae-datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
