// CLI: pae-model-pack, the legacy-to-`.paez` artifact converter.
// Reads a model written by CrfTagger::Save (and optionally embeddings
// written by Word2Vec::Save), lays it out as the zero-copy mmap format
// and verifies the written file end to end before exiting.
//
//   pae-model-pack --model m.crf --out m.paez
//   pae-model-pack --model m.crf --embeddings w.w2v --int8 --out m.paez
//   pae-model-pack --check m.paez            (validate + checksums only)
//   pae-model-pack --info m.paez             (print the section table)
//
// A `m.crf.pairs` sidecar (the accepted catalog pairs) is copied to
// `<out>.pairs` so the serving engine finds it under either name.

#include <fstream>
#include <iostream>
#include <string>

#include "args.h"
#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "embed/word2vec.h"
#include "util/logging.h"

namespace {

int Usage() {
  std::cerr << "usage: pae-model-pack --model m.crf [--embeddings w.w2v]\n"
            << "                      [--int8] --out m.paez\n"
            << "       pae-model-pack --check m.paez\n"
            << "       pae-model-pack --info m.paez\n";
  return 2;
}

const char* SectionKindName(uint32_t kind) {
  switch (kind) {
    case pae::core::kCrfMeta: return "crf-meta";
    case pae::core::kCrfLabels: return "crf-labels";
    case pae::core::kCrfFeatureSlots: return "crf-feature-slots";
    case pae::core::kCrfFeatureKeys: return "crf-feature-keys";
    case pae::core::kCrfFeatureArena: return "crf-feature-arena";
    case pae::core::kCrfWeights: return "crf-weights";
    case pae::core::kEmbedMeta: return "embed-meta";
    case pae::core::kEmbedVocabSlots: return "embed-vocab-slots";
    case pae::core::kEmbedVocabKeys: return "embed-vocab-keys";
    case pae::core::kEmbedVocabArena: return "embed-vocab-arena";
    case pae::core::kEmbedVectorsF32: return "embed-vectors-f32";
    case pae::core::kEmbedVectorsI8: return "embed-vectors-i8";
    case pae::core::kEmbedQuantParams: return "embed-quant-params";
    case pae::core::kLstmParams: return "lstm-params";
    default: return "?";
  }
}

/// Full open with payload checksums — the packer's exit criterion and
/// the whole job of --check.
int Verify(const std::string& path, bool print_table) {
  pae::core::ModelArtifact::OpenOptions options;
  options.verify_checksums = true;
  auto artifact = pae::core::ModelArtifact::Open(path, options);
  if (!artifact.ok()) {
    std::cerr << artifact.status().ToString() << "\n";
    return 1;
  }
  const pae::core::ModelArtifact& a = *artifact.value();
  std::cout << path << ": paez v" << a.header().version << ", "
            << a.file_bytes() << " bytes, " << a.sections().size()
            << " sections";
  if (a.has_crf()) {
    std::cout << ", crf " << a.crf_meta().num_labels << " labels / "
              << a.crf_meta().num_features << " features / "
              << a.crf_meta().weight_count << " weights";
  }
  if (a.has_embeddings()) {
    std::cout << ", embed " << a.embed_meta().vocab_count << " x "
              << a.embed_meta().dim
              << (a.embeddings_quantized() ? " int8" : " f32");
  }
  std::cout << "\n";
  if (print_table) {
    for (const pae::core::PaezSection& s : a.sections()) {
      std::cout << "  " << SectionKindName(s.kind) << " offset=" << s.offset
                << " length=" << s.length << " align=" << s.align << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pae::tools::Args args(argc, argv);

  if (args.Has("check")) return Verify(args.GetString("check", ""), false);
  if (args.Has("info")) return Verify(args.GetString("info", ""), true);

  const std::string model_path = args.GetString("model", "");
  const std::string out_path = args.GetString("out", "");
  if (model_path.empty() || out_path.empty()) return Usage();

  pae::crf::CrfTagger tagger;
  pae::Status loaded = tagger.Load(model_path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  pae::embed::Word2Vec embeddings;
  bool has_embeddings = false;
  const std::string embeddings_path = args.GetString("embeddings", "");
  if (!embeddings_path.empty()) {
    pae::Status eloaded = embeddings.Load(embeddings_path);
    if (!eloaded.ok()) {
      std::cerr << eloaded.ToString() << "\n";
      return 1;
    }
    has_embeddings = true;
  }

  pae::core::PackOptions options;
  options.quantize_embeddings = args.Has("int8");
  if (options.quantize_embeddings && !has_embeddings) {
    std::cerr << "--int8 requires --embeddings\n";
    return 2;
  }

  pae::Status packed = pae::core::PackModelArtifact(
      tagger, has_embeddings ? &embeddings : nullptr, options, out_path);
  if (!packed.ok()) {
    std::cerr << packed.ToString() << "\n";
    return 1;
  }

  // Copy the accepted-pairs sidecar so `<out>.pairs` travels with the
  // artifact the way `<model>.pairs` travels with the legacy file.
  std::ifstream pairs_in(model_path + ".pairs", std::ios::binary);
  if (pairs_in) {
    std::ofstream pairs_out(out_path + ".pairs",
                            std::ios::binary | std::ios::trunc);
    pairs_out << pairs_in.rdbuf();
    if (!pairs_out) {
      std::cerr << "failed copying " << model_path << ".pairs\n";
      return 1;
    }
  }

  return Verify(out_path, false);
}
