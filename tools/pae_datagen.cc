// CLI: writes a synthetic e-commerce category corpus (HTML pages, query
// log, tokenizer/PoS resources) plus its evaluation ground truth to a
// directory in the layout `pae-extract` consumes.
//
//   pae-datagen --category vacuum --products 500 --seed 42 --out /tmp/v
//   pae-datagen --list

#include <iostream>
#include <string>

#include "args.h"
#include "core/corpus_io.h"
#include "datagen/generator.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

struct NamedCategory {
  const char* key;
  pae::datagen::CategoryId id;
};

constexpr NamedCategory kCategories[] = {
    {"tennis", pae::datagen::CategoryId::kTennis},
    {"kitchen", pae::datagen::CategoryId::kKitchen},
    {"cosmetics", pae::datagen::CategoryId::kCosmetics},
    {"garden", pae::datagen::CategoryId::kGarden},
    {"shoes", pae::datagen::CategoryId::kShoes},
    {"bags", pae::datagen::CategoryId::kLadiesBags},
    {"camera", pae::datagen::CategoryId::kDigitalCameras},
    {"vacuum", pae::datagen::CategoryId::kVacuumCleaner},
    {"mailbox-de", pae::datagen::CategoryId::kMailboxDe},
    {"coffee-de", pae::datagen::CategoryId::kCoffeeMachinesDe},
    {"garden-de", pae::datagen::CategoryId::kGardenDe},
    {"baby-carriers", pae::datagen::CategoryId::kBabyCarriers},
    {"baby-goods", pae::datagen::CategoryId::kBabyGoods},
};

int Usage() {
  std::cerr << "usage: pae-datagen --category <name> --out <dir>\n"
            << "                   [--products N=500] [--seed S=42]\n"
            << "                   [--no-truth]\n"
            << "       pae-datagen --list\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pae::SetMinLogLevel(1);
  pae::tools::Args args(argc, argv);

  if (args.Has("list")) {
    for (const NamedCategory& c : kCategories) {
      std::cout << c.key << "\t" << pae::datagen::CategoryName(c.id) << "\n";
    }
    return 0;
  }
  const std::string category = args.GetString("category", "");
  const std::string out_dir = args.GetString("out", "");
  if (category.empty() || out_dir.empty()) return Usage();

  const pae::datagen::CategoryId* id = nullptr;
  for (const NamedCategory& c : kCategories) {
    if (category == c.key) id = &c.id;
  }
  if (id == nullptr) {
    std::cerr << "unknown category '" << category
              << "' (see pae-datagen --list)\n";
    return 2;
  }

  pae::datagen::GeneratorConfig config;
  config.num_products = args.GetInt("products", 500);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  pae::datagen::GeneratedCategory generated =
      pae::datagen::GenerateCategory(*id, config);

  pae::Status status = pae::core::SaveCorpus(generated.corpus, out_dir);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  if (!args.Has("no-truth")) {
    status = pae::core::SaveTruth(generated.truth, out_dir);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << generated.corpus.pages.size() << " pages, "
            << generated.corpus.query_log.size() << " queries, "
            << generated.truth.entries.size() << " truth entries to "
            << out_dir << "\n";
  return 0;
}
