#ifndef PAE_TOOLS_ARGS_H_
#define PAE_TOOLS_ARGS_H_

// Tiny --flag value / --flag parser shared by the CLI tools.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pae::tools {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      const std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";  // boolean flag
      }
    }
  }

  bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int GetInt(const std::string& name, int fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pae::tools

#endif  // PAE_TOOLS_ARGS_H_
