// CLI: pae-loadgen, the deterministic load driver for pae-serve.
//
// Connect mode — drive a running daemon:
//   pae-loadgen --socket /tmp/pae.sock --corpus corpus/ --requests 2000 \
//               --threads 4 [--swap-at 1000 --swap-model m.crf \
//               --swap-resources corpus/] [--shutdown-after]
//
// Self-serve sweep mode — start an in-process server per worker count
// and write the serving benchmark JSON:
//   pae-loadgen --self-serve --model m.crf --resources corpus/ \
//               --corpus corpus/ --worker-counts 1,4,8 \
//               --json BENCH_serving.json
//
// Flags: --requests N (default 1000)  --threads N (driver threads)
//        --warmup N                   --seed S
//        --extract-fraction X         --qps X (open loop; 0 = closed)
//        --host H (default 127.0.0.1) --port N | --socket PATH
//        --json OUT ("-" = stdout)
//
// Every run prints one summary line; the request schedule, aggregate
// triple count and response checksum depend only on --seed, --requests,
// --extract-fraction and the corpus+model — never on --threads, --qps
// or timing.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "args.h"
#include "core/corpus_io.h"
#include "core/engine.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/strings.h"

namespace {

using pae::core::Corpus;
using pae::serve::Client;
using pae::serve::LoadgenOptions;
using pae::serve::LoadgenProduct;
using pae::serve::LoadgenReport;

std::string ChecksumHex(uint64_t checksum) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << checksum;
  return os.str();
}

int Usage() {
  std::cerr
      << "usage: pae-loadgen --corpus DIR (--socket PATH | --port N)\n"
      << "                   [--host H] [--requests N] [--threads N]\n"
      << "                   [--warmup N] [--seed S]\n"
      << "                   [--extract-fraction X] [--qps X]\n"
      << "                   [--swap-at N --swap-model m.crf\n"
      << "                    --swap-resources DIR] [--shutdown-after]\n"
      << "                   [--json OUT]\n"
      << "       pae-loadgen --self-serve --model m.crf --resources DIR\n"
      << "                   --corpus DIR [--worker-counts 1,4,8]\n"
      << "                   [--json BENCH_serving.json] [...same knobs]\n";
  return 2;
}

LoadgenOptions OptionsFromArgs(const pae::tools::Args& args) {
  LoadgenOptions options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.threads = args.GetInt("threads", 4);
  options.requests = args.GetInt("requests", 1000);
  options.warmup_requests = args.GetInt("warmup", 0);
  options.extract_fraction = args.GetDouble("extract-fraction", 1.0);
  options.open_loop_qps = args.GetDouble("qps", 0.0);
  options.swap_at = args.GetInt("swap-at", -1);
  return options;
}

std::vector<LoadgenProduct> ProductsFromCorpus(const Corpus& corpus) {
  std::vector<LoadgenProduct> products;
  products.reserve(corpus.pages.size());
  for (const auto& page : corpus.pages) {
    products.push_back(LoadgenProduct{page.product_id, page.html});
  }
  return products;
}

void PrintReport(const std::string& label, const LoadgenReport& report) {
  std::cout << label << ": requests=" << report.requests_sent
            << " ok=" << report.ok_responses
            << " errors=" << report.error_responses
            << " transport_errors=" << report.transport_errors
            << " triples=" << report.triples << " checksum="
            << ChecksumHex(report.checksum) << " generations=["
            << report.generation_min << "," << report.generation_max
            << "] qps=" << pae::FormatDouble(report.qps, 1)
            << " p50=" << pae::FormatDouble(report.p50_seconds * 1e3, 3)
            << "ms p95=" << pae::FormatDouble(report.p95_seconds * 1e3, 3)
            << "ms p99=" << pae::FormatDouble(report.p99_seconds * 1e3, 3)
            << "ms saturated=" << (report.saturated ? 1 : 0) << "\n";
}

void AppendReportJson(std::ostringstream& os, const LoadgenReport& report,
                      int workers, const LoadgenOptions& options) {
  os << "    {\n"
     << "      \"workers\": " << workers << ",\n"
     << "      \"driver_threads\": " << options.threads << ",\n"
     << "      \"requests\": " << report.requests_sent << ",\n"
     << "      \"ok\": " << report.ok_responses << ",\n"
     << "      \"errors\": " << report.error_responses << ",\n"
     << "      \"transport_errors\": " << report.transport_errors << ",\n"
     << "      \"triples\": " << report.triples << ",\n"
     << "      \"checksum\": \"" << ChecksumHex(report.checksum) << "\",\n"
     << "      \"qps\": " << report.qps << ",\n"
     << "      \"p50_ms\": " << report.p50_seconds * 1e3 << ",\n"
     << "      \"p95_ms\": " << report.p95_seconds * 1e3 << ",\n"
     << "      \"p99_ms\": " << report.p99_seconds * 1e3 << ",\n"
     << "      \"max_ms\": " << report.max_seconds * 1e3 << ",\n"
     << "      \"saturated\": " << (report.saturated ? "true" : "false")
     << "\n"
     << "    }";
}

int WriteJson(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::cout << body;
    return 0;
  }
  std::ofstream out(path, std::ios::trunc);
  out << body;
  out.flush();
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "serving benchmark -> " << path << "\n";
  return 0;
}

std::vector<int> ParseWorkerCounts(const std::string& spec) {
  std::vector<int> counts;
  std::stringstream ss(spec);
  for (std::string item; std::getline(ss, item, ',');) {
    const int n = std::atoi(item.c_str());
    if (n > 0) counts.push_back(n);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  pae::tools::Args args(argc, argv);
  const std::string corpus_dir = args.GetString("corpus", "");
  if (corpus_dir.empty()) return Usage();

  auto corpus = pae::core::LoadCorpus(corpus_dir);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  const std::vector<LoadgenProduct> products =
      ProductsFromCorpus(corpus.value());
  if (products.empty()) {
    std::cerr << "corpus has no pages\n";
    return 1;
  }
  LoadgenOptions options = OptionsFromArgs(args);
  const std::string json_path = args.GetString("json", "");

  // ---- self-serve sweep: in-process server per worker count ----
  if (args.Has("self-serve")) {
    const std::string model_path = args.GetString("model", "");
    const std::string resources_dir = args.GetString("resources", "");
    if (model_path.empty() || resources_dir.empty()) return Usage();
    auto engine = pae::core::LoadCrfEngine(model_path, resources_dir,
                                           pae::core::EngineOptions{});
    if (!engine.ok()) {
      std::cerr << engine.status().ToString() << "\n";
      return 1;
    }
    const std::vector<int> worker_counts =
        ParseWorkerCounts(args.GetString("worker-counts", "1,4,8"));

    std::ostringstream json;
    json << "{\n  \"version\": 1,\n  \"benchmark\": \"pae-serve\",\n"
         << "  \"requests_per_run\": " << options.requests << ",\n"
         << "  \"seed\": " << options.seed << ",\n  \"runs\": [\n";
    bool first = true;
    for (int workers : worker_counts) {
      pae::serve::ServerOptions server_options;
      server_options.tcp_port = 0;  // ephemeral loopback port
      server_options.workers = workers;
      pae::serve::Server server(server_options);
      pae::Status started = server.Start();
      if (!started.ok()) {
        std::cerr << started.ToString() << "\n";
        return 1;
      }
      server.Publish(engine.value());
      const int port = server.tcp_port();
      auto connect = [port] {
        return Client::ConnectTcpSocket("127.0.0.1", port);
      };
      // One driver per worker: the server hands each connection to one
      // pool thread for its whole lifetime, so more persistent drivers
      // than workers would queue behind the pool instead of adding load.
      LoadgenOptions run_options = options;
      run_options.threads = workers;
      auto report = RunLoadgen(run_options, products, connect);
      server.Stop();
      if (!report.ok()) {
        std::cerr << report.status().ToString() << "\n";
        return 1;
      }
      PrintReport("workers=" + std::to_string(workers), report.value());
      if (!first) json << ",\n";
      first = false;
      AppendReportJson(json, report.value(), workers, run_options);
    }
    json << "\n  ]\n}\n";
    return json_path.empty() ? 0 : WriteJson(json_path, json.str());
  }

  // ---- connect mode: drive a running daemon ----
  const std::string socket_path = args.GetString("socket", "");
  const std::string host = args.GetString("host", "127.0.0.1");
  const int port = args.GetInt("port", -1);
  if (socket_path.empty() && port < 0) return Usage();

  auto connect = [&]() -> pae::Result<Client> {
    if (!socket_path.empty()) return Client::ConnectUnixSocket(socket_path);
    return Client::ConnectTcpSocket(host, port);
  };

  std::function<void()> swap_hook;
  const std::string swap_model = args.GetString("swap-model", "");
  if (options.swap_at >= 0 && !swap_model.empty()) {
    const std::string swap_resources =
        args.GetString("swap-resources", corpus_dir);
    swap_hook = [&, swap_model, swap_resources] {
      auto admin = connect();
      if (!admin.ok()) {
        std::cerr << "swap connect failed: " << admin.status().ToString()
                  << "\n";
        return;
      }
      auto generation = admin.value().Publish(swap_model, swap_resources);
      if (!generation.ok()) {
        std::cerr << "swap failed: " << generation.status().ToString()
                  << "\n";
        return;
      }
      std::cout << "hot-swapped to generation " << generation.value()
                << "\n";
    };
  }

  auto report = RunLoadgen(options, products, connect, swap_hook);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  PrintReport("loadgen", report.value());

  if (args.Has("shutdown-after")) {
    auto admin = connect();
    if (admin.ok()) {
      pae::Status shutdown = admin.value().Shutdown();
      if (!shutdown.ok()) {
        std::cerr << "shutdown failed: " << shutdown.ToString() << "\n";
        return 1;
      }
      std::cout << "daemon shutdown acknowledged\n";
    }
  }

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"version\": 1,\n  \"benchmark\": \"pae-serve\",\n"
         << "  \"requests_per_run\": " << options.requests << ",\n"
         << "  \"seed\": " << options.seed << ",\n  \"runs\": [\n";
    AppendReportJson(json, report.value(), /*workers=*/-1, options);
    json << "\n  ]\n}\n";
    return WriteJson(json_path, json.str());
  }
  return 0;
}
