// CLI: pae-serve, the always-on extraction daemon. Loads a persisted
// CRF model + language resources into an immutable ExtractionEngine,
// publishes it behind the generation pointer and serves the
// length-prefixed protocol until a kShutdown request or SIGINT/SIGTERM.
//
//   pae-serve --socket /tmp/pae.sock --model m.crf --resources corpus/
//   pae-serve --port 0 --model m.crf --resources corpus/ --workers 8
//
// Flags: --socket PATH | --port N (0 = ephemeral; the resolved port is
//          printed on the ready line)
//        --model m.crf --resources DIR  (initial generation; omit both
//          to start empty and publish over the wire)
//        --workers N (default 4)        --min-confidence X
//        --no-negation                  --no-pairs (ignore m.crf.pairs)
//        --metrics-out report.json      (written at shutdown)

#include <csignal>
#include <iostream>
#include <string>

#include <chrono>
#include <thread>

#include "args.h"
#include "core/engine.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

int Usage() {
  std::cerr
      << "usage: pae-serve (--socket PATH | --port N)\n"
      << "                 [--model m.crf --resources DIR]\n"
      << "                 [--workers N] [--min-confidence X]\n"
      << "                 [--no-negation] [--no-pairs]\n"
      << "                 [--metrics-out report.json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pae::tools::Args args(argc, argv);
  const std::string socket_path = args.GetString("socket", "");
  const bool has_port = args.Has("port");
  if (socket_path.empty() == !has_port) return Usage();

  pae::serve::ServerOptions options;
  options.unix_path = socket_path;
  options.tcp_port = has_port ? args.GetInt("port", 0) : -1;
  options.workers = args.GetInt("workers", 4);
  options.publish_engine_options.min_span_confidence =
      args.GetDouble("min-confidence", 0.0);
  if (args.Has("no-negation")) {
    options.publish_engine_options.negation_filtering = false;
  }

  pae::serve::Server server(options);

  const std::string model_path = args.GetString("model", "");
  const std::string resources_dir = args.GetString("resources", "");
  if (model_path.empty() != resources_dir.empty()) {
    std::cerr << "--model and --resources must be given together\n";
    return 2;
  }
  std::shared_ptr<const pae::core::ExtractionEngine> engine;
  if (!model_path.empty()) {
    // Timed into the same histogram kPublish hot swaps use, so a
    // metrics report shows the initial load next to the swaps.
    pae::util::Histogram* load_seconds =
        pae::util::MetricsRegistry::Global().GetHistogram(
            "serve.publish.load_seconds", pae::core::RequestLatencyBounds());
    pae::util::ScopedTimer load_timer(load_seconds);
    auto loaded = pae::core::LoadCrfEngine(
        model_path, resources_dir, options.publish_engine_options,
        /*load_accepted_pairs=*/!args.Has("no-pairs"));
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    engine = std::move(loaded.value());
  }

  pae::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  if (engine != nullptr) {
    server.Publish(std::move(engine));
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // The ready line is the scripted startup handshake: bench_serving.sh
  // and the check.sh smoke block on it before connecting.
  if (!socket_path.empty()) {
    std::cout << "pae-serve ready unix:" << socket_path
              << " generation=" << server.generation() << std::endl;
  } else {
    std::cout << "pae-serve ready tcp:" << server.tcp_port()
              << " generation=" << server.generation() << std::endl;
  }

  // Park until a kShutdown request flips the server's stop flag or a
  // signal arrives. Polling keeps the signal handler async-safe.
  while (g_signal == 0 && server.running()) {
    if (server.stop_requested()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    const pae::util::RunReport report =
        pae::util::MetricsRegistry::Global().Snapshot();
    pae::Status written = report.WriteJsonFile(metrics_out);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "pae-serve exit\n";
  return 0;
}
