// CLI: runs the full PAE bootstrap on an on-disk corpus and writes the
// extracted <product, attribute, value> triples as TSV.
//
//   pae-extract --in /tmp/v --out /tmp/v/triples.tsv
//   pae-extract --in /tmp/v --out out.tsv --model bilstm --iterations 3
//   pae-extract --in /tmp/v --out out.tsv --eval       # score vs truth.tsv
//
// Flags: --model crf|bilstm|ensemble-intersect|ensemble-union
//        --iterations N (default 5)      --seed S
//        --no-cleaning / --no-semantic / --no-syntactic / --no-negation
//        --no-diversification            --min-confidence X
//        --epochs N (BiLSTM)             --eval
//        --metrics-out report.json ("-" = stdout) --no-metrics
//        --ingest streaming|barrier (default streaming: single-pass
//          page-at-a-time ingestion; barrier = load-everything-first
//          reference path; outputs are byte-identical)

#include <iostream>
#include <string>

#include "args.h"
#include <fstream>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "crf/crf_tagger.h"
#include "core/corpus_io.h"
#include "core/eval.h"
#include "core/ingest.h"
#include "core/model_artifact.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace {

/// Writes the JSON run report and prints the summary tables when
/// --metrics-out was given. Returns non-zero on write failure.
int WriteMetricsReport(const pae::tools::Args& args) {
  const std::string path = args.GetString("metrics-out", "");
  if (path.empty()) return 0;
  // Stamp the SIMD dispatch decision right before snapshotting: gauges
  // set at startup would not survive a MetricsRegistry::Reset().
  pae::math::kernels::RecordSimdMetrics();
  const pae::util::RunReport report =
      pae::util::MetricsRegistry::Global().Snapshot();
  pae::Status status = report.WriteJsonFile(path);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  // When the JSON goes to stdout the summary must not corrupt it.
  report.PrintSummary(path == "-" ? std::cerr : std::cout);
  if (path != "-") std::cout << "metrics report -> " << path << "\n";
  return 0;
}

int Usage() {
  std::cerr << "usage: pae-extract --in <corpus dir> --out <triples.tsv>\n"
            << "                   [--model crf|bilstm|ensemble-intersect|"
               "ensemble-union]\n"
            << "                   [--iterations N] [--epochs N] [--seed S]\n"
            << "                   [--no-cleaning] [--no-semantic]\n"
            << "                   [--no-syntactic] [--no-negation]\n"
            << "                   [--no-diversification]\n"
            << "                   [--min-confidence X] [--eval]\n"
            << "                   [--metrics-out report.json]  (\"-\" =\n"
            << "                    stdout; also prints a summary table)\n"
            << "                   [--no-metrics]  (disable all metrics\n"
            << "                    collection)\n"
            << "                   [--threads N]  (0 = all hardware threads;\n"
            << "                    output is identical for every N)\n"
            << "                   [--ingest streaming|barrier]  (default\n"
            << "                    streaming; byte-identical outputs)\n"
            << "                   [--save-model m.crf]  (CRF only; also\n"
            << "                    writes m.crf.pairs)\n"
            << "       pae-extract --in <dir> --out <tsv> --apply-model\n"
            << "                   m.crf   (tag without bootstrapping)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pae::SetMinLogLevel(1);
  pae::tools::Args args(argc, argv);
  const std::string in_dir = args.GetString("in", "");
  const std::string out_path = args.GetString("out", "");
  if (in_dir.empty() || out_path.empty()) return Usage();

  const int threads = args.GetInt("threads", 0);
  if (threads < 0) {
    std::cerr << "--threads must be >= 0 (0 = all hardware threads)\n";
    return 2;
  }
  if (args.Has("no-metrics")) {
    pae::util::MetricsRegistry::Global().set_enabled(false);
  }

  const std::string ingest_mode = args.GetString("ingest", "streaming");
  if (ingest_mode != "streaming" && ingest_mode != "barrier") {
    std::cerr << "--ingest must be 'streaming' or 'barrier', got '"
              << ingest_mode << "'\n";
    return 2;
  }
  const bool streaming = ingest_mode == "streaming";

  pae::core::IngestedCorpus ingested;
  if (streaming) {
    pae::core::IngestOptions ingest_options;
    ingest_options.threads = threads;
    auto ingest_result = pae::core::IngestCorpusDir(in_dir, ingest_options);
    if (!ingest_result.ok()) {
      std::cerr << ingest_result.status().ToString() << "\n";
      return 1;
    }
    ingested = std::move(ingest_result).value();
  } else {
    auto corpus_result = pae::core::LoadCorpus(in_dir);
    if (!corpus_result.ok()) {
      std::cerr << corpus_result.status().ToString() << "\n";
      return 1;
    }
    ingested.corpus = pae::core::ProcessCorpus(corpus_result.value(), threads);
  }
  pae::core::ProcessedCorpus& corpus = ingested.corpus;
  std::cerr << "loaded " << corpus.pages.size() << " pages ("
            << corpus.category << ", "
            << pae::text::LanguageName(corpus.language) << ")\n";

  // ---- apply mode: tag with a persisted model, no bootstrap ----
  if (args.Has("apply-model")) {
    const std::string model_path = args.GetString("apply-model", "");
    pae::crf::CrfTagger tagger;
    if (pae::core::IsPaezFile(model_path)) {
      auto artifact = pae::core::ModelArtifact::Open(model_path);
      auto packed = artifact.ok()
                        ? pae::core::MakePackedCrfModel(
                              std::move(artifact).value())
                        : pae::Result<pae::crf::PackedCrfModel>(
                              artifact.status());
      pae::Status loaded = packed.ok()
                               ? tagger.LoadPacked(std::move(packed).value())
                               : packed.status();
      if (!loaded.ok()) {
        std::cerr << loaded.ToString() << "\n";
        return 1;
      }
    } else {
      pae::Status loaded = tagger.Load(model_path);
      if (!loaded.ok()) {
        std::cerr << loaded.ToString() << "\n";
        return 1;
      }
    }
    pae::core::ApplyOptions apply;
    apply.threads = threads;
    apply.min_span_confidence = args.GetDouble("min-confidence", 0.0);
    if (args.Has("no-negation")) apply.negation_filtering = false;
    std::ifstream pairs(model_path + ".pairs");
    for (std::string line; std::getline(pairs, line);) {
      if (!line.empty()) apply.accepted_pairs.insert(line);
    }
    std::vector<pae::core::Triple> triples =
        pae::core::ExtractWithModel(tagger, corpus, apply);
    pae::Status save = pae::core::SaveTriples(triples, out_path);
    if (!save.ok()) {
      std::cerr << save.ToString() << "\n";
      return 1;
    }
    std::cout << "applied " << model_path << ": " << triples.size()
              << " triples -> " << out_path << "\n";
    if (args.Has("eval")) {
      auto truth = pae::core::LoadTruth(in_dir);
      if (truth.ok()) {
        pae::core::TripleMetrics metrics = pae::core::EvaluateTriples(
            triples, truth.value(), corpus.pages.size());
        std::cout << "precision=" << pae::FormatDouble(metrics.precision, 2)
                  << "% coverage=" << pae::FormatDouble(metrics.coverage, 2)
                  << "%\n";
      }
    }
    return WriteMetricsReport(args);
  }

  pae::core::PipelineConfig config;
  const std::string model = args.GetString("model", "crf");
  if (model == "crf") {
    config.model = pae::core::ModelType::kCrf;
  } else if (model == "bilstm") {
    config.model = pae::core::ModelType::kBiLstm;
  } else if (model == "ensemble-intersect") {
    config.model = pae::core::ModelType::kEnsembleIntersection;
  } else if (model == "ensemble-union") {
    config.model = pae::core::ModelType::kEnsembleUnion;
  } else {
    std::cerr << "unknown model '" << model << "'\n";
    return 2;
  }
  config.threads = threads;
  config.iterations = args.GetInt("iterations", 5);
  config.lstm.epochs = args.GetInt("epochs", config.lstm.epochs);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 99));
  if (args.Has("no-cleaning")) {
    config.syntactic_cleaning = false;
    config.semantic_cleaning = false;
  }
  if (args.Has("no-semantic")) config.semantic_cleaning = false;
  if (args.Has("no-syntactic")) config.syntactic_cleaning = false;
  if (args.Has("no-negation")) config.negation_filtering = false;
  if (args.Has("no-diversification")) {
    config.preprocess.enable_diversification = false;
  }
  config.min_span_confidence = args.GetDouble("min-confidence", 0.0);
  const std::string save_model = args.GetString("save-model", "");
  if (!save_model.empty()) {
    if (config.model != pae::core::ModelType::kCrf) {
      std::cerr << "--save-model currently supports --model crf only\n";
      return 2;
    }
    config.train_final_model = true;
  }

  pae::core::Pipeline pipeline(config);
  auto result = streaming ? pipeline.Run(ingested) : pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const auto& triples = result.value().final_triples();
  pae::Status save = pae::core::SaveTriples(triples, out_path);
  if (!save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  std::cout << "extracted " << triples.size() << " triples ("
            << result.value().seed.attributes.size()
            << " attributes) -> " << out_path << "\n";

  if (!save_model.empty() && result.value().final_tagger != nullptr) {
    auto* crf_tagger = dynamic_cast<pae::crf::CrfTagger*>(
        result.value().final_tagger.get());
    if (crf_tagger == nullptr) {
      std::cerr << "--save-model: final model is not a CRF\n";
      return 1;
    }
    pae::Status saved = crf_tagger->Save(save_model);
    if (!saved.ok()) {
      std::cerr << saved.ToString() << "\n";
      return 1;
    }
    std::ofstream pairs(save_model + ".pairs", std::ios::trunc);
    for (const std::string& key : result.value().known_pair_keys) {
      pairs << key << "\n";
    }
    std::cout << "saved model to " << save_model << " (+.pairs)\n";
  }

  if (args.Has("eval")) {
    auto truth = pae::core::LoadTruth(in_dir);
    if (!truth.ok()) {
      std::cerr << "--eval: " << truth.status().ToString() << "\n";
      return 1;
    }
    pae::core::TripleMetrics metrics = pae::core::EvaluateTriples(
        triples, truth.value(), corpus.pages.size());
    std::cout << "precision=" << pae::FormatDouble(metrics.precision, 2)
              << "% coverage=" << pae::FormatDouble(metrics.coverage, 2)
              << "% (correct=" << metrics.correct
              << " incorrect=" << metrics.incorrect
              << " maybe=" << metrics.maybe_incorrect
              << " unjudged=" << metrics.unjudged << ")\n";
  }
  return WriteMetricsReport(args);
}
