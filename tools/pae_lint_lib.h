#ifndef PAE_TOOLS_PAE_LINT_LIB_H_
#define PAE_TOOLS_PAE_LINT_LIB_H_

#include <string>
#include <string_view>
#include <vector>

namespace pae::lint {

/// One project-rule violation at a specific file/line.
struct Violation {
  std::string file;     // repo-relative, e.g. "src/crf/crf_model.h"
  int line = 0;         // 1-based
  std::string rule;     // stable rule id, e.g. "raw-random"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// Rule ids enforced by LintFile (also the allowlist keys):
///
///   hot-path-string-map  std::unordered_map<std::string, ...> inside
///                        src/crf/ or src/text/ — the tagging/feature
///                        hot paths must use util::FlatStringInterner.
///   raw-random           rand()/srand()/std::random_device anywhere but
///                        util/rng.h — all randomness flows through the
///                        seeded pae::Rng so experiments reproduce.
///   raw-stdio            std::cout/std::cerr in src/ outside
///                        util/logging.cc — library code logs through
///                        PAE_LOG. CLI front-ends (tools/, bench/)
///                        write to stdout by design and are exempt.
///   naked-assert         assert( in src/ — use PAE_DCHECK, which logs
///                        file:line through util/logging instead of
///                        dying silently under NDEBUG.
///   include-guard        a header whose first #ifndef is not the
///                        canonical PAE_<PATH>_H_ guard.
///   float-accumulator    a scalar `float x = 0...;` accumulated with
///                        `x +=` shortly after — reductions accumulate
///                        in double (see math/vec.h) to avoid float
///                        cancellation drift across bootstrap cycles.
///   hand-rolled-kernel   a hand-rolled dot (`acc +=
///                        static_cast<double>(a[i]) * b[i]`) or axpy
///                        (`y[i] += alpha * x[i]`) loop outside
///                        src/math/ — math/kernels.h has the dispatched
///                        SIMD implementations whose results are
///                        bit-identical across ISAs; private loops fork
///                        the numerics and forfeit the speedup.
///   raw-mutex            std::mutex / std::lock_guard /
///                        std::unique_lock / std::condition_variable
///                        outside src/util/ — concurrency goes through
///                        pae::util::Mutex / MutexLock / CondVar
///                        (util/mutex.h), whose annotations let Clang's
///                        -Wthread-safety prove the lock discipline;
///                        raw std types are invisible to the analysis.
///   atomic-memory-order  an atomic load/store/RMW call without an
///                        explicit std::memory_order argument — the
///                        implicit seq_cst default hides the ordering
///                        decision; spelling it forces the author (and
///                        the reviewer) to state the contract, and makes
///                        deliberate relaxations greppable.
///   detached-thread      std::thread{...}.detach() — detached threads
///                        outlive their state's owner and turn shutdown
///                        into a race; every thread in the tree joins.
///   unguarded-mutable    a `mutable` member that is neither an atomic,
///                        nor a Mutex, nor named in a PAE_GUARDED_BY
///                        annotation — `mutable` means "written under
///                        const", which on shared objects means written
///                        concurrently; the analysis must be told which
///                        lock protects it.
///   mmap-reinterpret-cast
///                        reinterpret_cast outside the two files whose
///                        whole job is reinterpreting mapped bytes
///                        (core/model_artifact.cc, util/mmap_file.cc) —
///                        everywhere else the cast is an aliasing
///                        hazard that belongs behind a typed helper or
///                        std::memcpy.
///   single-writer-interner
///                        FlatStringInterner::Intern or Vocab::GetOrAdd
///                        inside a ParallelFor body — both mutate
///                        single-writer open-addressing tables, so a
///                        worker calling them races every other worker.
///                        Concurrent interning goes through
///                        util::ConcurrentStringInterner: workers hold
///                        handles, one Canonicalize after the join
///                        restores deterministic dense ids.
inline constexpr const char* kAllRules[] = {
    "hot-path-string-map", "raw-random",        "raw-stdio",
    "naked-assert",        "include-guard",     "float-accumulator",
    "hand-rolled-kernel",  "raw-mutex",         "atomic-memory-order",
    "detached-thread",     "unguarded-mutable", "mmap-reinterpret-cast",
    "single-writer-interner",
};

/// Returns `content` with comments and string/char literals replaced by
/// spaces (newlines preserved so line numbers survive). Exposed for
/// testing.
std::string StripCommentsAndStrings(std::string_view content);

/// Canonical include guard for a repo-relative header path:
/// "src/crf/crf_model.h" -> "PAE_CRF_CRF_MODEL_H_".
std::string ExpectedIncludeGuard(std::string_view path);

/// Token-scans one file's content against every project rule. `path` is
/// the repo-relative path (used for path-scoped rules and the include
/// guard); it does not need to exist on disk.
std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content);

/// An allowlist entry grandfathers one (rule, file) pair. The allowlist
/// file format is one `rule-id<space>path` pair per line; blank lines
/// and lines starting with '#' are ignored.
struct AllowlistEntry {
  std::string rule;
  std::string file;
};

/// Parses the allowlist format above.
std::vector<AllowlistEntry> ParseAllowlist(std::string_view content);

/// Removes violations covered by the allowlist.
std::vector<Violation> ApplyAllowlist(
    std::vector<Violation> violations,
    const std::vector<AllowlistEntry>& allowlist);

/// Lints every .h/.cc file under `root_dir` (a directory on disk whose
/// basename becomes the path prefix, e.g. <repo>/src). Files are visited
/// in sorted path order so output is deterministic.
std::vector<Violation> LintTree(const std::string& root_dir);

}  // namespace pae::lint

#endif  // PAE_TOOLS_PAE_LINT_LIB_H_
