#ifndef PAE_TOOLS_PAE_LINT_LIB_H_
#define PAE_TOOLS_PAE_LINT_LIB_H_

#include <string>
#include <string_view>
#include <vector>

namespace pae::lint {

/// One project-rule violation at a specific file/line.
struct Violation {
  std::string file;     // repo-relative, e.g. "src/crf/crf_model.h"
  int line = 0;         // 1-based
  std::string rule;     // stable rule id, e.g. "raw-random"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// Rule ids enforced by LintFile (also the allowlist keys):
///
///   hot-path-string-map  std::unordered_map<std::string, ...> inside
///                        src/crf/ or src/text/ — the tagging/feature
///                        hot paths must use util::FlatStringInterner.
///   raw-random           rand()/srand()/std::random_device anywhere but
///                        util/rng.h — all randomness flows through the
///                        seeded pae::Rng so experiments reproduce.
///   raw-stdio            std::cout/std::cerr outside util/logging.cc —
///                        library code logs through PAE_LOG.
///   naked-assert         assert( in src/ — use PAE_DCHECK, which logs
///                        file:line through util/logging instead of
///                        dying silently under NDEBUG.
///   include-guard        a header whose first #ifndef is not the
///                        canonical PAE_<PATH>_H_ guard.
///   float-accumulator    a scalar `float x = 0...;` accumulated with
///                        `x +=` shortly after — reductions accumulate
///                        in double (see math/vec.h) to avoid float
///                        cancellation drift across bootstrap cycles.
///   hand-rolled-kernel   a hand-rolled dot (`acc +=
///                        static_cast<double>(a[i]) * b[i]`) or axpy
///                        (`y[i] += alpha * x[i]`) loop outside
///                        src/math/ — math/kernels.h has the dispatched
///                        SIMD implementations whose results are
///                        bit-identical across ISAs; private loops fork
///                        the numerics and forfeit the speedup.
inline constexpr const char* kAllRules[] = {
    "hot-path-string-map", "raw-random",        "raw-stdio",
    "naked-assert",        "include-guard",     "float-accumulator",
    "hand-rolled-kernel",
};

/// Returns `content` with comments and string/char literals replaced by
/// spaces (newlines preserved so line numbers survive). Exposed for
/// testing.
std::string StripCommentsAndStrings(std::string_view content);

/// Canonical include guard for a repo-relative header path:
/// "src/crf/crf_model.h" -> "PAE_CRF_CRF_MODEL_H_".
std::string ExpectedIncludeGuard(std::string_view path);

/// Token-scans one file's content against every project rule. `path` is
/// the repo-relative path (used for path-scoped rules and the include
/// guard); it does not need to exist on disk.
std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content);

/// An allowlist entry grandfathers one (rule, file) pair. The allowlist
/// file format is one `rule-id<space>path` pair per line; blank lines
/// and lines starting with '#' are ignored.
struct AllowlistEntry {
  std::string rule;
  std::string file;
};

/// Parses the allowlist format above.
std::vector<AllowlistEntry> ParseAllowlist(std::string_view content);

/// Removes violations covered by the allowlist.
std::vector<Violation> ApplyAllowlist(
    std::vector<Violation> violations,
    const std::vector<AllowlistEntry>& allowlist);

/// Lints every .h/.cc file under `root_dir` (a directory on disk whose
/// basename becomes the path prefix, e.g. <repo>/src). Files are visited
/// in sorted path order so output is deterministic.
std::vector<Violation> LintTree(const std::string& root_dir);

}  // namespace pae::lint

#endif  // PAE_TOOLS_PAE_LINT_LIB_H_
