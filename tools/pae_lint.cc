// pae_lint: project-rule linter for the PAE tree.
//
// Usage: pae_lint [--allowlist FILE] [ROOT_DIR...]
//
// Scans every .h/.cc under each ROOT_DIR (default: src) for violations
// of the project rules documented in pae_lint_lib.h, prints each one as
// file:line: [rule] message, and exits non-zero if any remain after
// applying the allowlist. Registered as a ctest target so `ctest`
// catches regressions alongside the unit tests.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pae_lint_lib.h"

int main(int argc, char** argv) {
  std::string allowlist_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_path = arg.substr(12);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: pae_lint [--allowlist FILE] [ROOT_DIR...]\n");
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots.push_back("src");

  std::vector<pae::lint::AllowlistEntry> allowlist;
  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pae_lint: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    allowlist = pae::lint::ParseAllowlist(buf.str());
  }

  std::vector<pae::lint::Violation> violations;
  for (const std::string& root : roots) {
    std::vector<pae::lint::Violation> v = pae::lint::LintTree(root);
    violations.insert(violations.end(), v.begin(), v.end());
  }
  // Flag allowlist entries that no longer match anything so stale
  // grandfather clauses get cleaned up (warning only, not an error).
  for (const pae::lint::AllowlistEntry& e : allowlist) {
    bool used = false;
    for (const pae::lint::Violation& v : violations) {
      if (v.rule == e.rule && v.file == e.file) {
        used = true;
        break;
      }
    }
    if (!used) {
      std::fprintf(stderr,
                   "pae_lint: warning: allowlist entry '%s %s' matched "
                   "nothing; consider removing it\n",
                   e.rule.c_str(), e.file.c_str());
    }
  }

  const size_t before = violations.size();
  violations = pae::lint::ApplyAllowlist(violations, allowlist);

  for (const pae::lint::Violation& v : violations) {
    std::printf("%s\n", v.ToString().c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "pae_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::fprintf(stderr, "pae_lint: clean (%zu suppressed by allowlist)\n",
               before - violations.size());
  return 0;
}
