#include "pae_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace pae::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string_view> SplitLines(std::string_view s) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// True when `text[at]` begins token `tok` (identifier boundaries on
/// both sides).
bool TokenAt(std::string_view text, size_t at, std::string_view tok) {
  if (at + tok.size() > text.size()) return false;
  if (text.substr(at, tok.size()) != tok) return false;
  if (at > 0 && IsIdentChar(text[at - 1])) return false;
  const size_t end = at + tok.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// Calls `fn(line_number)` for every token occurrence of `tok`.
template <typename Fn>
void ForEachToken(std::string_view text, std::string_view tok, Fn&& fn) {
  int line = 1;
  for (size_t i = 0; i + tok.size() <= text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      continue;
    }
    if (TokenAt(text, i, tok)) fn(line, i);
  }
}

size_t SkipSpaces(std::string_view s, size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
  return i;
}

/// Index of the last non-whitespace character before `i`, or npos.
size_t PrevNonSpace(std::string_view s, size_t i) {
  while (i > 0) {
    --i;
    if (s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r') {
      return i;
    }
  }
  return std::string_view::npos;
}

/// True when the token starting at `i` is reached via `.` or `->`
/// (i.e. it is a member call on some object).
bool IsMemberAccess(std::string_view s, size_t i) {
  const size_t p = PrevNonSpace(s, i);
  if (p == std::string_view::npos) return false;
  if (s[p] == '.') return true;
  return s[p] == '>' && p > 0 && s[p - 1] == '-';
}

/// Given `open` at a '(' in `s`, returns the index one past the
/// matching ')' and stores the argument text in `*args`. Returns npos
/// when the parenthesis never closes.
size_t MatchParen(std::string_view s, size_t open, std::string_view* args) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      --depth;
      if (depth == 0) {
        *args = s.substr(open + 1, i - open - 1);
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

}  // namespace

std::string Violation::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // ")delim" terminator of the raw string
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = (i + 1 < content.size()) ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // R"delim( ... )delim"
          state = State::kRawString;
          raw_delim = ")";
          for (size_t j = i + 1; j < content.size() && content[j] != '(';
               ++j) {
            raw_delim.push_back(content[j]);
          }
          raw_delim.push_back('"');
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && !(i > 0 && IsIdentChar(content[i - 1]))) {
          // Identifier boundary guard keeps digit separators (1'000'000)
          // from opening a bogus char literal.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::string ExpectedIncludeGuard(std::string_view path) {
  std::string_view rel = path;
  if (StartsWith(rel, "src/")) rel.remove_prefix(4);
  if (EndsWith(rel, ".h")) rel.remove_suffix(2);
  std::string guard = "PAE_";
  for (char c : rel) {
    guard.push_back(
        std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
            : '_');
  }
  guard += "_H_";
  return guard;
}

std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content) {
  std::vector<Violation> out;
  const std::string stripped = StripCommentsAndStrings(content);
  auto add = [&](int line, const char* rule, std::string message) {
    out.push_back(Violation{std::string(path), line, rule,
                            std::move(message)});
  };

  // --- hot-path-string-map: string-keyed hash maps in tagging hot
  // paths; FlatStringInterner gives dense ids + string_view lookup.
  if (StartsWith(path, "src/crf/") || StartsWith(path, "src/text/")) {
    constexpr std::string_view kMapTok = "unordered_map";
    ForEachToken(stripped, kMapTok, [&](int line, size_t i) {
      size_t j = SkipSpaces(stripped, i + kMapTok.size());
      if (j >= stripped.size() || stripped[j] != '<') return;
      j = SkipSpaces(stripped, j + 1);
      size_t key_end = j;
      if (TokenAt(stripped, j, "std")) {
        if (stripped.compare(j, 5, "std::") == 0) j += 5;
      }
      if (!TokenAt(stripped, j, "string")) return;
      key_end = j + 6;
      if (SkipSpaces(stripped, key_end) < stripped.size() &&
          stripped[SkipSpaces(stripped, key_end)] != ',') {
        return;  // e.g. unordered_map<std::string_view never parses here
      }
      add(line, "hot-path-string-map",
          "std::unordered_map<std::string, ...> on a tagging hot path; "
          "use util::FlatStringInterner (dense ids, string_view lookup)");
    });
  }

  // --- raw-random: all randomness must flow through the seeded
  // pae::Rng so every experiment reproduces bit-for-bit.
  if (path != "src/util/rng.h") {
    for (const char* tok : {"rand", "srand"}) {
      ForEachToken(stripped, tok, [&](int line, size_t i) {
        const size_t j = SkipSpaces(stripped, i + std::string_view(tok).size());
        if (j < stripped.size() && stripped[j] == '(') {
          add(line, "raw-random",
              std::string(tok) +
                  "() bypasses the seeded pae::Rng; experiments must "
                  "reproduce bit-for-bit (util/rng.h)");
        }
      });
    }
    ForEachToken(stripped, "random_device", [&](int line, size_t) {
      add(line, "raw-random",
          "std::random_device is non-deterministic; derive streams from "
          "the seeded pae::Rng (util/rng.h)");
    });
  }

  // --- raw-stdio: library code logs through PAE_LOG so severity
  // filtering and benchmark quieting keep working. Scoped to src/: the
  // CLI front-ends under tools/ and bench/ write their output (tables,
  // JSON, usage) to stdout/stderr by design.
  if (StartsWith(path, "src/") && path != "src/util/logging.cc") {
    for (const char* tok : {"cout", "cerr"}) {
      ForEachToken(stripped, tok, [&](int line, size_t i) {
        if (i < 2 || stripped.compare(i - 2, 2, "::") != 0) return;
        add(line, "raw-stdio",
            std::string("std::") + tok +
                " outside util/logging.cc; use PAE_LOG(...) so severity "
                "filtering applies");
      });
    }
  }

  // --- naked-assert: assert() vanishes under NDEBUG without a trace;
  // PAE_DCHECK logs file:line and stays on in sanitizer builds.
  ForEachToken(stripped, "assert", [&](int line, size_t i) {
    const size_t j = SkipSpaces(stripped, i + 6);
    if (j < stripped.size() && stripped[j] == '(') {
      add(line, "naked-assert",
          "naked assert(); use PAE_DCHECK (logs file:line via "
          "util/logging, on in Debug and sanitizer builds)");
    }
  });

  // --- include-guard: canonical PAE_<PATH>_H_ guards.
  if (EndsWith(path, ".h")) {
    const std::string expected = ExpectedIncludeGuard(path);
    bool found_ifndef = false;
    int line_no = 0;
    for (std::string_view line : SplitLines(stripped)) {
      ++line_no;
      size_t i = SkipSpaces(line, 0);
      if (i >= line.size() || line[i] != '#') continue;
      i = SkipSpaces(line, i + 1);
      if (line.compare(i, 6, "ifndef") != 0) continue;
      found_ifndef = true;
      i = SkipSpaces(line, i + 6);
      size_t end = i;
      while (end < line.size() && IsIdentChar(line[end])) ++end;
      const std::string_view guard = line.substr(i, end - i);
      if (guard != expected) {
        add(line_no, "include-guard",
            "include guard '" + std::string(guard) + "' should be '" +
                expected + "'");
      }
      break;  // only the first #ifndef is the guard
    }
    if (!found_ifndef) {
      add(1, "include-guard",
          "header has no #ifndef include guard (expected '" + expected +
              "')");
    }
  }

  // --- float-accumulator: scalar float reductions drift; math/vec.h
  // accumulates in double and narrows once.
  {
    static const std::regex decl_re(
        R"(\bfloat\s+([A-Za-z_]\w*)\s*=\s*0(\.\d*)?f?\s*;)");
    static constexpr int kWindow = 15;
    const std::vector<std::string_view> lines = SplitLines(stripped);
    for (size_t ln = 0; ln < lines.size(); ++ln) {
      std::cmatch m;
      const std::string_view line = lines[ln];
      if (!std::regex_search(line.data(), line.data() + line.size(), m,
                             decl_re)) {
        continue;
      }
      const std::string ident = m[1].str();
      const std::regex accum_re("\\b" + ident + R"(\s*\+=)");
      const size_t hi = std::min(lines.size(), ln + 1 + kWindow);
      for (size_t k = ln + 1; k < hi; ++k) {
        if (std::regex_search(lines[k].data(),
                              lines[k].data() + lines[k].size(),
                              accum_re)) {
          add(static_cast<int>(ln + 1), "float-accumulator",
              "scalar float accumulator '" + ident +
                  "'; accumulate in double and narrow once "
                  "(see math/vec.h)");
          break;
        }
      }
    }
  }

  // --- hand-rolled-kernel: dense dot/axpy loops outside the kernel
  // layer; math/kernels.h dispatches them to SIMD with results that are
  // bit-identical across ISAs. A private loop forks the numerics.
  if (!StartsWith(path, "src/math/")) {
    // The repo's float-dot idiom: acc += static_cast<double>(a[i])*b[i].
    static const std::regex dot_re(
        R"(\+=\s*static_cast<\s*double\s*>\s*\(\s*[A-Za-z_]\w*\s*\[[^\]]*\]\s*\)\s*\*\s*[A-Za-z_]\w*\s*\[[^\]]*\])");
    // The axpy idiom: y[i] += alpha * x[i].
    static const std::regex axpy_re(
        R"([A-Za-z_]\w*\s*\[[^\]]*\]\s*\+=\s*[A-Za-z_]\w*\s*\*\s*[A-Za-z_]\w*\s*\[[^\]]*\])");
    int line_no = 0;
    for (std::string_view line : SplitLines(stripped)) {
      ++line_no;
      if (std::regex_search(line.data(), line.data() + line.size(),
                            dot_re)) {
        add(line_no, "hand-rolled-kernel",
            "hand-rolled dot-product loop; use math::kernels::Dot / "
            "MatVec (SIMD-dispatched, bit-identical across ISAs)");
      } else if (std::regex_search(line.data(), line.data() + line.size(),
                                   axpy_re)) {
        add(line_no, "hand-rolled-kernel",
            "hand-rolled axpy loop; use math::kernels::Axpy / AddOuter "
            "(SIMD-dispatched, bit-identical across ISAs)");
      }
    }
  }

  // --- raw-mutex: only the annotated pae::util wrappers are visible to
  // Clang's -Wthread-safety analysis; raw std synchronization types
  // escape it entirely. src/util/ hosts the wrappers themselves.
  if (!StartsWith(path, "src/util/")) {
    for (const char* tok :
         {"mutex", "lock_guard", "unique_lock", "condition_variable"}) {
      ForEachToken(stripped, tok, [&](int line, size_t i) {
        if (i < 5 || stripped.compare(i - 5, 5, "std::") != 0) return;
        add(line, "raw-mutex",
            std::string("std::") + tok +
                " is invisible to -Wthread-safety; use util::Mutex / "
                "MutexLock / CondVar (util/mutex.h)");
      });
    }
  }

  // --- single-writer-interner: FlatStringInterner::Intern and
  // Vocab::GetOrAdd mutate single-writer open-addressing tables; called
  // from a ParallelFor body they race. Concurrent interning goes
  // through util::ConcurrentStringInterner (handles in the loop, one
  // Canonicalize after the join). The legitimate concurrent call sites
  // (the interner's own tests/benches) are allowlisted.
  {
    constexpr std::string_view kLoopTok = "ParallelFor";
    ForEachToken(stripped, kLoopTok, [&](int line, size_t i) {
      const size_t open = SkipSpaces(stripped, i + kLoopTok.size());
      if (open >= stripped.size() || stripped[open] != '(') return;
      std::string_view args;
      if (MatchParen(stripped, open, &args) == std::string_view::npos) {
        return;
      }
      for (const char* tok : {"Intern", "GetOrAdd"}) {
        ForEachToken(args, tok, [&](int rel_line, size_t j) {
          if (!IsMemberAccess(args, j)) return;
          const size_t call =
              SkipSpaces(args, j + std::string_view(tok).size());
          if (call >= args.size() || args[call] != '(') return;
          add(line + rel_line - 1, "single-writer-interner",
              std::string(".") + tok +
                  "() inside a ParallelFor body: FlatStringInterner and "
                  "Vocab are single-writer; use "
                  "util::ConcurrentStringInterner handles in the loop and "
                  "Canonicalize after the join");
        });
      }
    });
  }

  // --- atomic-memory-order: the implicit seq_cst default hides the
  // ordering decision. Spelling the order states the contract and makes
  // deliberate relaxations greppable.
  {
    for (const char* tok :
         {"load", "store", "fetch_add", "fetch_sub", "fetch_and",
          "fetch_or", "fetch_xor", "exchange", "compare_exchange_strong",
          "compare_exchange_weak"}) {
      ForEachToken(stripped, tok, [&](int line, size_t i) {
        if (!IsMemberAccess(stripped, i)) return;
        const size_t open =
            SkipSpaces(stripped, i + std::string_view(tok).size());
        if (open >= stripped.size() || stripped[open] != '(') return;
        std::string_view args;
        if (MatchParen(stripped, open, &args) == std::string_view::npos) {
          return;
        }
        if (args.find("memory_order") != std::string_view::npos) return;
        add(line, "atomic-memory-order",
            std::string(".") + tok +
                "() without an explicit std::memory_order; state the "
                "ordering contract (seq_cst included) at the call site");
      });
    }
  }

  // --- detached-thread: a detached thread outlives its state's owner
  // and turns shutdown into a race; every thread in this tree joins.
  ForEachToken(stripped, "detach", [&](int line, size_t i) {
    if (!IsMemberAccess(stripped, i)) return;
    const size_t open = SkipSpaces(stripped, i + 6);
    if (open >= stripped.size() || stripped[open] != '(') return;
    add(line, "detached-thread",
        ".detach() orphans the thread past its owner's lifetime; keep "
        "the handle and join it on shutdown");
  });

  // --- unguarded-mutable: `mutable` means "written under const", which
  // on shared objects means written concurrently. Atomics and Mutexes
  // synchronize themselves; anything else must name its lock in a
  // PAE_GUARDED_BY so the analysis can check it. A `mutable` right
  // after a lambda parameter list is the (unrelated) lambda qualifier.
  ForEachToken(stripped, "mutable", [&](int line, size_t i) {
    const size_t p = PrevNonSpace(stripped, i);
    if (p != std::string_view::npos && stripped[p] == ')') return;
    const size_t semi = stripped.find(';', i);
    if (semi == std::string::npos) return;
    const std::string_view decl =
        std::string_view(stripped).substr(i, semi - i);
    if (decl.find("PAE_GUARDED_BY") != std::string_view::npos) return;
    if (decl.find("atomic") != std::string_view::npos) return;
    if (decl.find("Mutex") != std::string_view::npos) return;
    add(line, "unguarded-mutable",
        "mutable member is neither atomic, nor a Mutex, nor "
        "PAE_GUARDED_BY(some mutex); name the lock that protects it");
  });

  // --- mmap-reinterpret-cast: reinterpreting mapped bytes is the whole
  // job of exactly two files; everywhere else the cast is an aliasing
  // hazard that belongs behind a typed helper or std::memcpy.
  if (path != "src/core/model_artifact.cc" &&
      path != "src/util/mmap_file.cc") {
    ForEachToken(stripped, "reinterpret_cast", [&](int line, size_t) {
      add(line, "mmap-reinterpret-cast",
          "reinterpret_cast outside core/model_artifact.cc and "
          "util/mmap_file.cc; use a typed accessor or std::memcpy");
    });
  }

  std::sort(out.begin(), out.end(), [](const Violation& a,
                                       const Violation& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<AllowlistEntry> ParseAllowlist(std::string_view content) {
  std::vector<AllowlistEntry> entries;
  for (std::string_view line : SplitLines(content)) {
    size_t i = SkipSpaces(line, 0);
    if (i >= line.size() || line[i] == '#') continue;
    size_t sp = line.find_first_of(" \t", i);
    if (sp == std::string_view::npos) continue;
    AllowlistEntry e;
    e.rule = std::string(line.substr(i, sp - i));
    size_t j = SkipSpaces(line, sp);
    size_t end = line.find_first_of(" \t#", j);
    if (end == std::string_view::npos) end = line.size();
    e.file = std::string(line.substr(j, end - j));
    if (!e.file.empty()) entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<Violation> ApplyAllowlist(
    std::vector<Violation> violations,
    const std::vector<AllowlistEntry>& allowlist) {
  violations.erase(
      std::remove_if(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return std::any_of(
                           allowlist.begin(), allowlist.end(),
                           [&](const AllowlistEntry& e) {
                             return e.rule == v.rule && e.file == v.file;
                           });
                     }),
      violations.end());
  return violations;
}

std::vector<Violation> LintTree(const std::string& root_dir) {
  namespace fs = std::filesystem;
  const fs::path root(root_dir);
  const std::string prefix = root.filename().string();
  std::vector<std::pair<std::string, fs::path>> files;  // label -> path
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string label =
        prefix + "/" + fs::relative(entry.path(), root).generic_string();
    files.emplace_back(label, entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> out;
  for (const auto& [label, file_path] : files) {
    std::ifstream in(file_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Violation> file_violations = LintFile(label, buf.str());
    out.insert(out.end(), file_violations.begin(), file_violations.end());
  }
  return out;
}

}  // namespace pae::lint
